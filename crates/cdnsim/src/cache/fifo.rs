//! First-in-first-out eviction.

use super::{CacheKey, CachePolicy};
use std::collections::{HashMap, VecDeque};

/// Byte-bounded FIFO: eviction order is admission order; hits do not
/// refresh anything.
#[derive(Debug)]
pub struct FifoCache {
    queue: VecDeque<CacheKey>,
    entries: HashMap<CacheKey, u64>,
    bytes: u64,
    capacity: u64,
    evictions: u64,
}

impl FifoCache {
    /// Creates a FIFO cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            queue: VecDeque::new(),
            entries: HashMap::new(),
            bytes: 0,
            capacity: capacity_bytes,
            evictions: 0,
        }
    }

    fn evict_for(&mut self, size: u64) {
        while self.bytes + size > self.capacity {
            let Some(victim) = self.queue.pop_front() else {
                break;
            };
            if let Some(s) = self.entries.remove(&victim) {
                self.bytes -= s;
                self.evictions += 1;
            }
        }
    }
}

impl CachePolicy for FifoCache {
    fn request(&mut self, key: CacheKey, size: u64, now: u64) -> bool {
        if self.entries.contains_key(&key) {
            return true;
        }
        self.insert(key, size, now);
        false
    }

    fn insert(&mut self, key: CacheKey, size: u64, _now: u64) {
        if size > self.capacity || self.entries.contains_key(&key) {
            return;
        }
        self.evict_for(size);
        self.queue.push_back(key);
        self.entries.insert(key, size);
        self.bytes += size;
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn bytes_used(&self) -> u64 {
        self.bytes
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy_tests::key;
    use super::*;

    #[test]
    fn evicts_in_admission_order_despite_hits() {
        let mut cache = FifoCache::new(30);
        cache.request(key(1), 10, 0);
        cache.request(key(2), 10, 1);
        cache.request(key(3), 10, 2);
        // Hitting 1 does NOT protect it under FIFO.
        assert!(cache.request(key(1), 10, 3));
        cache.request(key(4), 10, 4);
        assert!(!cache.contains(&key(1)), "FIFO evicts oldest admission");
        assert!(cache.contains(&key(2)));
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut cache = FifoCache::new(30);
        cache.insert(key(1), 10, 0);
        cache.insert(key(1), 10, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes_used(), 10);
    }
}
