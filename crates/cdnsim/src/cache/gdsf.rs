//! GreedyDual-Size-Frequency eviction (Cherkasova, 1998).
//!
//! The canonical size-aware web-cache policy: an entry's priority is
//! `L + frequency / size`, where `L` is an inflation value raised to the
//! evicted priority on each eviction. Small, frequently-requested objects
//! (thumbnails) are protected against large one-shot objects (video
//! chunks) — exactly the mixed workload adult CDNs serve.

use super::{CacheKey, CachePolicy};
use std::collections::{BTreeSet, HashMap};

/// Byte-bounded GDSF cache.
///
/// Priorities are quantized to micro-units so they can live in an ordered
/// integer set (avoids float-ordering pitfalls while keeping 1e-6
/// resolution).
#[derive(Debug)]
pub struct GdsfCache {
    /// (priority_micro, seq, key) — first element is the eviction victim.
    order: BTreeSet<(u64, u64, CacheKey)>,
    entries: HashMap<CacheKey, GdsfMeta>,
    bytes: u64,
    capacity: u64,
    evictions: u64,
    inflation_micro: u64,
    next_seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct GdsfMeta {
    priority_micro: u64,
    seq: u64,
    frequency: u64,
    size: u64,
}

const MICRO: f64 = 1e6;

impl GdsfCache {
    /// Creates a GDSF cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            order: BTreeSet::new(),
            entries: HashMap::new(),
            bytes: 0,
            capacity: capacity_bytes,
            evictions: 0,
            inflation_micro: 0,
            next_seq: 0,
        }
    }

    fn priority_micro(&self, frequency: u64, size: u64) -> u64 {
        // L + f/s, in micro-units. Size is at least 1 byte.
        let value = frequency as f64 / size.max(1) as f64;
        self.inflation_micro + (value * MICRO) as u64
    }

    fn reinsert(&mut self, key: CacheKey, mut meta: GdsfMeta) {
        meta.priority_micro = self.priority_micro(meta.frequency, meta.size);
        meta.seq = self.next_seq;
        self.next_seq += 1;
        // oat-lint: allow(bounded-memory) -- one entry per cached object; evict_for caps bytes
        self.order.insert((meta.priority_micro, meta.seq, key));
        // oat-lint: allow(bounded-memory) -- one entry per cached object; evict_for caps bytes
        self.entries.insert(key, meta);
    }

    fn evict_for(&mut self, size: u64) {
        while self.bytes + size > self.capacity {
            let Some(&victim) = self.order.iter().next() else {
                break;
            };
            self.order.remove(&victim);
            let meta = self.entries.remove(&victim.2).expect("index consistency");
            self.bytes -= meta.size;
            self.evictions += 1;
            // GreedyDual inflation: future entries compete against the
            // value of what was just evicted.
            self.inflation_micro = victim.0;
        }
    }
}

impl CachePolicy for GdsfCache {
    fn request(&mut self, key: CacheKey, size: u64, now: u64) -> bool {
        if let Some(mut meta) = self.entries.remove(&key) {
            self.order.remove(&(meta.priority_micro, meta.seq, key));
            meta.frequency += 1;
            self.reinsert(key, meta);
            return true;
        }
        self.insert(key, size, now);
        false
    }

    fn insert(&mut self, key: CacheKey, size: u64, _now: u64) {
        if size > self.capacity || self.entries.contains_key(&key) {
            return;
        }
        self.evict_for(size);
        self.bytes += size;
        self.reinsert(
            key,
            GdsfMeta {
                priority_micro: 0,
                seq: 0,
                frequency: 1,
                size,
            },
        );
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn bytes_used(&self) -> u64 {
        self.bytes
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy_tests::key;
    use super::*;

    #[test]
    fn small_hot_objects_outrank_large_cold() {
        let mut cache = GdsfCache::new(1_000);
        // Hot thumbnail: 10 bytes, requested often.
        for t in 0..10 {
            cache.request(key(1), 10, t);
        }
        // Large one-shot objects churn through.
        for i in 0..20 {
            cache.request(key(100 + i), 900, 100 + i);
        }
        assert!(
            cache.contains(&key(1)),
            "hot small object survives large churn"
        );
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn frequency_raises_priority() {
        let mut cache = GdsfCache::new(30);
        cache.request(key(1), 10, 0);
        cache.request(key(2), 10, 1);
        cache.request(key(2), 10, 2); // f(2) = 2
        cache.request(key(3), 10, 3);
        // Inserting a fourth object evicts the lowest priority: key 1.
        cache.request(key(4), 10, 4);
        assert!(!cache.contains(&key(1)));
        assert!(cache.contains(&key(2)));
    }

    #[test]
    fn inflation_lets_new_entries_compete() {
        let mut cache = GdsfCache::new(20);
        // Build up frequency on one object.
        for t in 0..50 {
            cache.request(key(1), 10, t);
        }
        // Churn: inflation rises with each eviction, so eventually a new
        // object can displace the stale hot one if it stops being touched.
        for i in 0..2_000 {
            cache.request(key(10 + i), 10, 100 + i);
        }
        // The cache still functions and respects capacity.
        assert!(cache.bytes_used() <= 20);
        assert!(cache.evictions() > 1_000);
    }

    #[test]
    fn conformance_suite() {
        super::super::policy_tests::conformance(Box::new(GdsfCache::new(100)), 100);
    }
}
