//! TTL wrapper: expiry-driven revalidation on top of any policy.
//!
//! The paper (§IV-B) suggests trend-aware cache control: *"re-validating
//! diurnal objects less frequently and other objects more frequently, for
//! example, hourly for objects with short-lived access patterns and daily
//! for objects with long-lived access patterns."* `TtlCache` makes the
//! expiry interval explicit so ablation A5 can sweep it.

use super::{CacheKey, CachePolicy};
use std::collections::HashMap;

/// Wraps an inner policy with a freshness TTL: a hit on an entry older than
/// `ttl_secs` counts as a miss (origin revalidation refreshes the entry).
#[derive(Debug)]
pub struct TtlCache<C> {
    inner: C,
    fetched_at: HashMap<CacheKey, u64>,
    ttl_secs: u64,
    expirations: u64,
}

impl<C: CachePolicy> TtlCache<C> {
    /// Wraps `inner` with the given freshness TTL.
    pub fn new(inner: C, ttl_secs: u64) -> Self {
        Self {
            inner,
            fetched_at: HashMap::new(),
            ttl_secs,
            expirations: 0,
        }
    }

    /// Number of hits invalidated by expiry.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// The configured TTL.
    pub fn ttl_secs(&self) -> u64 {
        self.ttl_secs
    }

    /// Consumes the wrapper, returning the inner policy.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: CachePolicy> CachePolicy for TtlCache<C> {
    fn request(&mut self, key: CacheKey, size: u64, now: u64) -> bool {
        let hit = self.inner.request(key, size, now);
        if !hit {
            // oat-lint: allow(bounded-memory) -- keyed by object id: bounded by catalog cardinality
            self.fetched_at.insert(key, now);
            return false;
        }
        let fresh = self
            .fetched_at
            .get(&key)
            .is_some_and(|&t| now.saturating_sub(t) <= self.ttl_secs);
        if fresh {
            true
        } else {
            // Stale: revalidate against origin and refresh the timestamp.
            self.expirations += 1;
            // oat-lint: allow(bounded-memory) -- keyed by object id: bounded by catalog cardinality
            self.fetched_at.insert(key, now);
            false
        }
    }

    fn insert(&mut self, key: CacheKey, size: u64, now: u64) {
        self.inner.insert(key, size, now);
        // oat-lint: allow(bounded-memory) -- keyed by object id: bounded by catalog cardinality
        self.fetched_at.insert(key, now);
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.inner.contains(key)
    }

    fn peek(&self, key: &CacheKey, now: u64) -> bool {
        // A hit requires presence in the inner cache *and* freshness; a
        // present-but-stale entry peeks false (it would revalidate).
        self.inner.peek(key, now)
            && self
                .fetched_at
                .get(key)
                .is_some_and(|&t| now.saturating_sub(t) <= self.ttl_secs)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn bytes_used(&self) -> u64 {
        self.inner.bytes_used()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn evictions(&self) -> u64 {
        self.inner.evictions()
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy_tests::key;
    use super::super::LruCache;
    use super::*;

    #[test]
    fn fresh_hits_expired_misses() {
        let mut cache = TtlCache::new(LruCache::new(100), 10);
        assert!(!cache.request(key(1), 5, 0)); // cold
        assert!(cache.request(key(1), 5, 5)); // fresh
        assert!(cache.request(key(1), 5, 10)); // boundary: still fresh
        assert!(!cache.request(key(1), 5, 21)); // stale
        assert_eq!(cache.expirations(), 1);
        // Refreshed at t=21; fresh again at 25.
        assert!(cache.request(key(1), 5, 25));
    }

    #[test]
    fn peek_requires_freshness_and_has_no_side_effects() {
        let mut cache = TtlCache::new(LruCache::new(100), 10);
        cache.request(key(1), 5, 0);
        assert!(cache.peek(&key(1), 10), "boundary second is still fresh");
        assert!(!cache.peek(&key(1), 11), "expired entry peeks false");
        assert!(cache.contains(&key(1)), "but it is still present (stale)");
        assert_eq!(cache.expirations(), 0, "peek never revalidates");
        // A real request at the same instant revalidates as before.
        assert!(!cache.request(key(1), 5, 11));
        assert_eq!(cache.expirations(), 1);
    }

    #[test]
    fn insert_sets_freshness() {
        let mut cache = TtlCache::new(LruCache::new(100), 10);
        cache.insert(key(2), 5, 100);
        assert!(cache.request(key(2), 5, 105));
        assert_eq!(cache.ttl_secs(), 10);
        assert_eq!(cache.into_inner().len(), 1);
    }

    #[test]
    fn delegates_accounting() {
        let mut cache = TtlCache::new(LruCache::new(20), 1000);
        cache.request(key(1), 10, 0);
        cache.request(key(2), 10, 1);
        cache.request(key(3), 10, 2);
        assert!(cache.evictions() > 0);
        assert!(cache.bytes_used() <= 20);
        assert_eq!(cache.capacity_bytes(), 20);
        assert!(!cache.is_empty());
    }
}
