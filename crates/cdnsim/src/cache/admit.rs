//! Admission filtering: admit only on the second request.
//!
//! Over half of a long-tailed workload's objects are one-hit wonders;
//! admitting them evicts useful content. `AdmitOnSecond` keeps a bounded
//! ghost set of recently *seen* keys and only admits a key into the inner
//! cache once it has been requested twice — a standard CDN admission
//! control (cf. Akamai's "cache on second hit" rule).

use super::{CacheKey, CachePolicy};
use std::collections::{HashSet, VecDeque};

/// Wraps a policy with a seen-once ghost filter.
#[derive(Debug)]
pub struct AdmitOnSecond<C> {
    inner: C,
    ghost: VecDeque<CacheKey>,
    ghost_set: HashSet<CacheKey>,
    ghost_capacity: usize,
    filtered: u64,
}

impl<C: CachePolicy> AdmitOnSecond<C> {
    /// Wraps `inner`, remembering up to `ghost_capacity` seen-once keys.
    ///
    /// # Panics
    ///
    /// Panics if `ghost_capacity` is zero.
    pub fn new(inner: C, ghost_capacity: usize) -> Self {
        assert!(ghost_capacity > 0, "ghost capacity must be positive");
        Self {
            inner,
            ghost: VecDeque::new(),
            ghost_set: HashSet::new(),
            ghost_capacity,
            filtered: 0,
        }
    }

    /// Requests denied admission so far (first sightings).
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Consumes the wrapper, returning the inner policy.
    pub fn into_inner(self) -> C {
        self.inner
    }

    fn remember(&mut self, key: CacheKey) {
        // oat-lint: allow(bounded-memory) -- ghost set trimmed to ghost_capacity below
        if self.ghost_set.insert(key) {
            self.ghost.push_back(key);
            while self.ghost.len() > self.ghost_capacity {
                if let Some(old) = self.ghost.pop_front() {
                    self.ghost_set.remove(&old);
                }
            }
        }
    }

    fn forget(&mut self, key: &CacheKey) {
        if self.ghost_set.remove(key) {
            self.ghost.retain(|k| k != key);
        }
    }
}

impl<C: CachePolicy> CachePolicy for AdmitOnSecond<C> {
    fn request(&mut self, key: CacheKey, size: u64, now: u64) -> bool {
        if self.inner.contains(&key) {
            return self.inner.request(key, size, now);
        }
        if self.ghost_set.contains(&key) {
            // Second sighting: admit for real.
            self.forget(&key);
            self.inner.request(key, size, now);
            return false;
        }
        // First sighting: remember, don't admit.
        self.remember(key);
        self.filtered += 1;
        false
    }

    fn insert(&mut self, key: CacheKey, size: u64, now: u64) {
        // Explicit insertion (push placement) bypasses the filter.
        self.forget(&key);
        self.inner.insert(key, size, now);
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.inner.contains(key)
    }

    fn peek(&self, key: &CacheKey, now: u64) -> bool {
        // Ghost-set membership doesn't make the next request a hit, so
        // only the inner cache's answer matters.
        self.inner.peek(key, now)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn bytes_used(&self) -> u64 {
        self.inner.bytes_used()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn evictions(&self) -> u64 {
        self.inner.evictions()
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy_tests::key;
    use super::super::LruCache;
    use super::*;

    #[test]
    #[should_panic(expected = "ghost capacity")]
    fn zero_ghost_panics() {
        let _ = AdmitOnSecond::new(LruCache::new(10), 0);
    }

    #[test]
    fn admits_only_on_second_request() {
        let mut cache = AdmitOnSecond::new(LruCache::new(100), 16);
        assert!(!cache.request(key(1), 10, 0)); // first: filtered
        assert!(!cache.contains(&key(1)));
        assert_eq!(cache.filtered(), 1);
        assert!(!cache.request(key(1), 10, 1)); // second: admitted, still a miss
        assert!(cache.contains(&key(1)));
        assert!(cache.request(key(1), 10, 2)); // third: hit
    }

    #[test]
    fn one_hit_wonders_never_pollute() {
        let mut cache = AdmitOnSecond::new(LruCache::new(50), 1000);
        // Hot object, admitted.
        cache.request(key(1), 10, 0);
        cache.request(key(1), 10, 1);
        // A long scan of one-hit wonders.
        for i in 100..1000 {
            cache.request(key(i), 10, i);
        }
        assert!(cache.contains(&key(1)), "hot object survives the scan");
        assert_eq!(cache.len(), 1, "no scan object was admitted");
    }

    #[test]
    fn ghost_capacity_bounds_memory() {
        let mut cache = AdmitOnSecond::new(LruCache::new(100), 4);
        for i in 0..100 {
            cache.request(key(i), 10, i);
        }
        assert!(cache.ghost.len() <= 4);
        assert_eq!(cache.ghost.len(), cache.ghost_set.len());
        // Key 0 fell off the ghost list long ago: requesting it again is
        // another first sighting.
        assert!(!cache.request(key(0), 10, 200));
        assert!(!cache.contains(&key(0)));
    }

    #[test]
    fn insert_bypasses_filter() {
        let mut cache = AdmitOnSecond::new(LruCache::new(100), 16);
        cache.insert(key(7), 10, 0);
        assert!(cache.contains(&key(7)));
        assert!(cache.request(key(7), 10, 1));
        assert_eq!(cache.into_inner().len(), 1);
    }

    #[test]
    fn delegates_accounting() {
        let mut cache = AdmitOnSecond::new(LruCache::new(20), 16);
        for t in 0..3u64 {
            for i in 0..3u64 {
                cache.request(key(i), 10, t * 10 + i);
            }
        }
        assert!(cache.bytes_used() <= 20);
        assert_eq!(cache.capacity_bytes(), 20);
        assert!(cache.evictions() > 0);
        assert!(!cache.is_empty());
    }
}
