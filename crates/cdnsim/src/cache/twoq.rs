//! 2Q eviction (Johnson & Shasha, VLDB 1994).

use super::core_lru::LruCore;
use super::{CacheKey, CachePolicy};
use std::collections::VecDeque;

/// 2Q: recent admissions sit in a FIFO `A1in` queue; entries re-referenced
/// after falling out of `A1in` (tracked by the ghost `A1out` list) are
/// promoted into the main LRU (`Am`). One-hit wonders therefore never
/// pollute the main queue.
#[derive(Debug)]
pub struct TwoQCache {
    a1in: LruCore, // used FIFO-style: never touched on hit
    am: LruCore,
    a1out: VecDeque<CacheKey>,
    a1out_set: std::collections::HashSet<CacheKey>,
    a1in_capacity: u64,
    a1out_entries: usize,
    capacity: u64,
    evictions: u64,
}

impl TwoQCache {
    /// Creates a 2Q cache with `A1in` = 25 % of bytes and a ghost list of
    /// 512 entries.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            a1in: LruCore::new(),
            am: LruCore::new(),
            a1out: VecDeque::new(),
            a1out_set: std::collections::HashSet::new(),
            a1in_capacity: capacity_bytes / 4,
            a1out_entries: 512,
            capacity: capacity_bytes,
            evictions: 0,
        }
    }

    fn ghost_push(&mut self, key: CacheKey) {
        // oat-lint: allow(bounded-memory) -- A1out trimmed to a1out_entries below
        if self.a1out_set.insert(key) {
            self.a1out.push_back(key);
            while self.a1out.len() > self.a1out_entries {
                if let Some(old) = self.a1out.pop_front() {
                    self.a1out_set.remove(&old);
                }
            }
        }
    }

    fn make_room(&mut self, size: u64) {
        while self.a1in.bytes() + self.am.bytes() + size > self.capacity {
            // Prefer reclaiming A1in (its tail is the oldest admission);
            // track it in the ghost list.
            if self.a1in.bytes() > self.a1in_capacity || self.am.bytes() == 0 {
                if let Some((victim, _)) = self.a1in.pop_lru() {
                    self.ghost_push(victim);
                    self.evictions += 1;
                    continue;
                }
            }
            if self.am.pop_lru().is_some() {
                self.evictions += 1;
                continue;
            }
            if let Some((victim, _)) = self.a1in.pop_lru() {
                self.ghost_push(victim);
                self.evictions += 1;
                continue;
            }
            break;
        }
    }
}

impl CachePolicy for TwoQCache {
    fn request(&mut self, key: CacheKey, size: u64, now: u64) -> bool {
        if self.am.touch(&key) {
            return true;
        }
        if self.a1in.contains(&key) {
            // 2Q leaves A1in order untouched on hit.
            return true;
        }
        if self.a1out_set.contains(&key) {
            // Re-reference after A1in: promote straight to Am.
            if size <= self.capacity {
                self.a1out_set.remove(&key);
                self.a1out.retain(|k| k != &key);
                self.make_room(size);
                // oat-lint: allow(bounded-memory) -- make_room above frees capacity first
                self.am.insert(key, size);
            }
            return false; // ghost entries hold no bytes — still a miss
        }
        self.insert(key, size, now);
        false
    }

    fn insert(&mut self, key: CacheKey, size: u64, _now: u64) {
        if size > self.capacity || self.contains(&key) {
            return;
        }
        self.make_room(size);
        self.a1in.insert(key, size);
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.a1in.contains(key) || self.am.contains(key)
    }

    fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    fn bytes_used(&self) -> u64 {
        self.a1in.bytes() + self.am.bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy_tests::key;
    use super::*;

    #[test]
    fn ghost_promotion_to_main() {
        let mut cache = TwoQCache::new(40);
        // Fill and overflow A1in so key 1 lands in the ghost list.
        cache.request(key(1), 10, 0);
        for i in 2..=8 {
            cache.request(key(i), 10, i);
        }
        assert!(!cache.contains(&key(1)), "key 1 evicted to ghost");
        // Re-reference: miss, but promoted to Am.
        assert!(!cache.request(key(1), 10, 20));
        assert!(cache.contains(&key(1)));
        // Now a scan through A1in does not displace it.
        for i in 100..108 {
            cache.request(key(i), 10, i);
        }
        assert!(cache.contains(&key(1)), "Am entry survives A1in scans");
    }

    #[test]
    fn one_hit_wonders_cycle_through_a1in() {
        let mut cache = TwoQCache::new(40);
        for i in 0..100 {
            cache.request(key(i), 10, i);
        }
        // Main queue should be (near) empty: nothing was ever re-referenced.
        assert!(cache.bytes_used() <= 40);
        assert!(cache.evictions() > 50);
    }

    #[test]
    fn ghost_list_bounded() {
        let mut cache = TwoQCache::new(20);
        for i in 0..2_000 {
            cache.request(key(i), 10, i);
        }
        assert!(cache.a1out.len() <= 512);
        assert_eq!(cache.a1out.len(), cache.a1out_set.len());
    }
}
