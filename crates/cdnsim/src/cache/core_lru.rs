//! Shared ordered-recency core used by LRU-family policies.

use super::CacheKey;
use std::collections::{BTreeMap, HashMap};

/// A byte-bounded recency list: O(log n) touch/insert/evict via a sequence
/// counter and an ordered index. Backs [`LruCache`](super::LruCache),
/// [`SlruCache`](super::SlruCache) and [`TwoQCache`](super::TwoQCache).
#[derive(Debug, Default)]
pub(crate) struct LruCore {
    by_seq: BTreeMap<u64, CacheKey>,
    entries: HashMap<CacheKey, Entry>,
    bytes: u64,
    next_seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    seq: u64,
    size: u64,
}

impl LruCore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Moves `key` to the most-recent position. Returns false if absent.
    pub fn touch(&mut self, key: &CacheKey) -> bool {
        let Some(entry) = self.entries.get_mut(key) else {
            return false;
        };
        self.by_seq.remove(&entry.seq);
        entry.seq = self.next_seq;
        // oat-lint: allow(bounded-memory) -- paired with the remove above: size is constant
        self.by_seq.insert(self.next_seq, *key);
        self.next_seq += 1;
        true
    }

    /// Inserts `key` at the most-recent position (no capacity check —
    /// callers evict first). Re-inserting refreshes recency and size.
    pub fn insert(&mut self, key: CacheKey, size: u64) {
        if let Some(old) = self.entries.remove(&key) {
            self.by_seq.remove(&old.seq);
            self.bytes -= old.size;
        }
        self.by_seq.insert(self.next_seq, key);
        self.entries.insert(
            key,
            Entry {
                seq: self.next_seq,
                size,
            },
        );
        self.bytes += size;
        self.next_seq += 1;
    }

    /// Removes and returns the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(CacheKey, u64)> {
        let (&seq, &key) = self.by_seq.iter().next()?;
        self.by_seq.remove(&seq);
        let entry = self.entries.remove(&key).expect("index consistency");
        self.bytes -= entry.size;
        Some((key, entry.size))
    }

    /// Removes a specific key, returning its size.
    pub fn remove(&mut self, key: &CacheKey) -> Option<u64> {
        let entry = self.entries.remove(key)?;
        self.by_seq.remove(&entry.seq);
        self.bytes -= entry.size;
        Some(entry.size)
    }

    /// Size of the entry for `key`, if present.
    pub fn size_of(&self, key: &CacheKey) -> Option<u64> {
        self.entries.get(key).map(|e| e.size)
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy_tests::key;
    use super::*;

    #[test]
    fn insert_touch_evict_order() {
        let mut core = LruCore::new();
        core.insert(key(1), 10);
        core.insert(key(2), 10);
        core.insert(key(3), 10);
        assert_eq!(core.len(), 3);
        assert_eq!(core.bytes(), 30);
        // Touch 1; eviction order becomes 2, 3, 1.
        assert!(core.touch(&key(1)));
        assert_eq!(core.pop_lru().unwrap().0, key(2));
        assert_eq!(core.pop_lru().unwrap().0, key(3));
        assert_eq!(core.pop_lru().unwrap().0, key(1));
        assert!(core.pop_lru().is_none());
        assert_eq!(core.bytes(), 0);
    }

    #[test]
    fn touch_missing_is_false() {
        let mut core = LruCore::new();
        assert!(!core.touch(&key(9)));
    }

    #[test]
    fn reinsert_updates_size_and_recency() {
        let mut core = LruCore::new();
        core.insert(key(1), 10);
        core.insert(key(2), 10);
        core.insert(key(1), 25); // refresh
        assert_eq!(core.bytes(), 35);
        assert_eq!(core.len(), 2);
        assert_eq!(core.size_of(&key(1)), Some(25));
        assert_eq!(core.pop_lru().unwrap().0, key(2));
    }

    #[test]
    fn remove_specific() {
        let mut core = LruCore::new();
        core.insert(key(1), 7);
        assert_eq!(core.remove(&key(1)), Some(7));
        assert_eq!(core.remove(&key(1)), None);
        assert_eq!(core.bytes(), 0);
        assert_eq!(core.len(), 0);
    }
}
