//! Deterministic fault injection for the CDN simulator.
//!
//! The paper's cache-implications analysis (§IV-B/§V) assumes a healthy
//! CDN, but the traffic it measures — bursty, flash-crowd-prone, served
//! from geographically spread PoPs — is exactly the traffic that exposes
//! PoP outages, origin brownouts and overload in production. This module
//! models those failures as a seeded, serializable schedule
//! ([`FaultPlan`]) that the simulator consults through a read-only
//! [`FaultClock`], so every ablation can also be run degraded.
//!
//! Determinism is the design constraint: every probabilistic decision
//! (origin-fetch failures, retry jitter) is a pure function of the plan
//! seed and the request's identity — never of thread scheduling, shared
//! RNG stream position, or wall-clock time. The same plan over the same
//! trace therefore yields byte-identical logs at any thread count, which
//! is what lets the degraded ablations extend PR 1/2/4's invariance
//! property tests. See DESIGN.md "Fault model & degradation semantics".

use oat_httplog::PopId;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// SplitMix64 mixing step: a high-quality stateless hash of `x`.
///
/// The fault model's only randomness primitive — every draw hashes
/// `(seed, identity, counter)` through it, so draws are independent of
/// evaluation order.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` from `(seed, identity, counter)`.
fn unit(seed: u64, identity: u64, counter: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(identity ^ splitmix64(counter)));
    // 53 mantissa bits: the standard u64 → f64 unit-interval mapping.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A half-open time window `[start, end)` in trace seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// First second the fault is active.
    pub start: u64,
    /// First second the fault is no longer active.
    pub end: u64,
}

impl Window {
    /// Creates a `[start, end)` window.
    pub fn new(start: u64, end: u64) -> Self {
        Self { start, end }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: u64) -> bool {
        t >= self.start && t < self.end
    }
}

/// One PoP being fully down for a window: its requests fail over to the
/// nearest healthy sibling in the region, or shed with `503` when the
/// whole region is dark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PopOutage {
    /// The affected PoP id.
    pub pop: u16,
    /// When the PoP is down.
    pub window: Window,
}

/// An origin brownout: during the window each origin fetch independently
/// fails with `failure_prob`, retried per the plan's [`RetryPolicy`].
/// Requests whose fetch ultimately fails are served stale from cache when
/// a copy exists, else shed with `503`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Brownout {
    /// When the origin is browning out.
    pub window: Window,
    /// Per-attempt fetch failure probability in `[0, 1]`.
    pub failure_prob: f64,
}

/// Link-latency inflation: responses in the window are delivered `factor`×
/// slower. The simulator counts affected requests
/// ([`ServeStats::inflated_requests`](crate::ServeStats)); latency-model
/// summaries stay separate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyInflation {
    /// When links are slow.
    pub window: Window,
    /// Slowdown factor (≥ 1).
    pub factor: f64,
}

/// Capacity pressure on one PoP: within the window, at most
/// `inflight_budget` body-carrying requests are admitted per second; the
/// rest are load-shed with `503`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityPressure {
    /// The pressured PoP id.
    pub pop: u16,
    /// When the pressure applies.
    pub window: Window,
    /// Body-carrying requests admitted per second before shedding.
    pub inflight_budget: u32,
}

/// Bounded retry with exponential backoff and deterministic jitter for
/// origin fetches during brownouts.
///
/// The unjittered backoff before retry `n` (1-based) is
/// `min(base_backoff_ms << (n-1), max_backoff_ms)` — monotone
/// non-decreasing and capped. Jitter adds up to `jitter_frac` of that
/// value, drawn from the plan's splitmix stream keyed by the request
/// identity and attempt number, never from `thread_rng`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u8,
    /// Backoff before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub max_backoff_ms: u64,
    /// Jitter as a fraction of the backoff, in `[0, 1]`.
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// Unjittered backoff before retry `attempt` (1-based); 0 for
    /// `attempt == 0` (the initial try has no backoff).
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let exp = (attempt - 1).min(63);
        let raw = match 1u64.checked_shl(exp) {
            Some(mult) => self.base_backoff_ms.saturating_mul(mult),
            None => u64::MAX,
        };
        raw.min(self.max_backoff_ms)
    }

    /// Jittered backoff before retry `attempt`: the unjittered value plus
    /// up to `jitter_frac` of itself, deterministic in
    /// `(seed, identity, attempt)`.
    pub fn jittered_backoff_ms(&self, seed: u64, identity: u64, attempt: u32) -> u64 {
        let base = self.backoff_ms(attempt);
        let jitter = (unit(seed ^ JITTER_SALT, identity, attempt as u64)
            * self.jitter_frac.clamp(0.0, 1.0)
            * base as f64) as u64;
        base.saturating_add(jitter)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
            jitter_frac: 0.5,
        }
    }
}

const JITTER_SALT: u64 = 0x6a69_7474_6572_2121; // "jitter!!"
const FETCH_SALT: u64 = 0x6f72_6967_696e_3f3f; // "origin??"

/// A seeded, serializable schedule of faults for one simulation run.
///
/// An empty plan (the default) injects nothing, so a fault-aware
/// simulator over an empty plan behaves identically to a healthy one.
///
/// # Example
///
/// ```
/// use oat_cdnsim::faults::FaultPlan;
///
/// let plan = FaultPlan::sample(7, 86_400, 4);
/// let toml = plan.to_toml();
/// assert_eq!(FaultPlan::from_toml_str(&toml).unwrap(), plan);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision (fetch failures, jitter).
    #[serde(default)]
    pub seed: u64,
    /// PoP outage windows.
    #[serde(default)]
    pub outages: Vec<PopOutage>,
    /// Origin brownout intervals.
    #[serde(default)]
    pub brownouts: Vec<Brownout>,
    /// Link-latency inflation windows.
    #[serde(default)]
    pub latency: Vec<LatencyInflation>,
    /// Per-PoP capacity-pressure windows.
    #[serde(default)]
    pub pressure: Vec<CapacityPressure>,
    /// Retry schedule for origin fetches during brownouts.
    #[serde(default)]
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// An empty plan with the given seed — a base to push windows onto.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Whether the plan injects any fault at all.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
            && self.brownouts.is_empty()
            && self.latency.is_empty()
            && self.pressure.is_empty()
    }

    /// Checks value ranges (probabilities in `[0, 1]`, factors ≥ 1,
    /// windows non-inverted).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid value.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let windows = self
            .outages
            .iter()
            .map(|o| o.window)
            .chain(self.brownouts.iter().map(|b| b.window))
            .chain(self.latency.iter().map(|l| l.window))
            .chain(self.pressure.iter().map(|p| p.window));
        for w in windows {
            if w.start > w.end {
                return Err(FaultPlanError::new(format!(
                    "window starts at {} but ends at {}",
                    w.start, w.end
                )));
            }
        }
        for b in &self.brownouts {
            if !(0.0..=1.0).contains(&b.failure_prob) {
                return Err(FaultPlanError::new(format!(
                    "brownout failure_prob {} outside [0, 1]",
                    b.failure_prob
                )));
            }
        }
        for l in &self.latency {
            if l.factor < 1.0 || !l.factor.is_finite() {
                return Err(FaultPlanError::new(format!(
                    "latency factor {} must be a finite value ≥ 1",
                    l.factor
                )));
            }
        }
        if !(0.0..=1.0).contains(&self.retry.jitter_frac) {
            return Err(FaultPlanError::new(format!(
                "retry jitter_frac {} outside [0, 1]",
                self.retry.jitter_frac
            )));
        }
        Ok(())
    }

    /// Derives a plausible exercise-everything plan from a seed: one PoP
    /// outage, one origin brownout with latency inflation over it, and
    /// capacity pressure on another PoP, all placed deterministically
    /// within a `trace_secs`-long trace on `pop_count` PoPs.
    pub fn sample(seed: u64, trace_secs: u64, pop_count: u16) -> Self {
        let span = trace_secs.max(64);
        let pops = u64::from(pop_count.max(1));
        let mut counter = 0u64;
        let mut draw = |range: u64| {
            counter += 1;
            splitmix64(seed ^ splitmix64(counter)) % range.max(1)
        };

        let eighth = span / 8;
        let outage_pop = draw(pops) as u16;
        let outage_start = span / 4 + draw(eighth);
        let brownout_start = span / 2 + draw(eighth);
        let brownout_len = eighth + draw(eighth);
        let brownout_window = Window::new(brownout_start, brownout_start + brownout_len);
        let failure_prob = 0.5 + draw(40) as f64 / 100.0;
        let pressure_pop = draw(pops) as u16;
        let pressure_start = draw(span / 4);

        Self {
            seed,
            outages: vec![PopOutage {
                pop: outage_pop,
                window: Window::new(outage_start, outage_start + eighth),
            }],
            brownouts: vec![Brownout {
                window: brownout_window,
                failure_prob,
            }],
            latency: vec![LatencyInflation {
                window: brownout_window,
                factor: 1.5 + draw(20) as f64 / 10.0,
            }],
            pressure: vec![CapacityPressure {
                pop: pressure_pop,
                window: Window::new(pressure_start, pressure_start + eighth),
                inflight_budget: 1 + draw(8) as u32,
            }],
            retry: RetryPolicy::default(),
        }
    }

    /// Returns the plan with every window shifted `offset` seconds later
    /// (saturating). Fault windows compare against absolute request
    /// timestamps, so a plan authored relative to trace start must be
    /// shifted by the trace's start epoch before it is attached.
    #[must_use]
    pub fn shifted(mut self, offset: u64) -> Self {
        fn shift(w: &mut Window, offset: u64) {
            w.start = w.start.saturating_add(offset);
            w.end = w.end.saturating_add(offset);
        }
        for o in &mut self.outages {
            shift(&mut o.window, offset);
        }
        for b in &mut self.brownouts {
            shift(&mut b.window, offset);
        }
        for l in &mut self.latency {
            shift(&mut l.window, offset);
        }
        for p in &mut self.pressure {
            shift(&mut p.window, offset);
        }
        self
    }

    /// Serializes the plan in the TOML subset [`FaultPlan::from_toml_str`]
    /// reads.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        // Writing to a String is infallible; results are discarded.
        let _ = writeln!(out, "# oat-cdnsim fault plan");
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out);
        let _ = writeln!(out, "[retry]");
        let _ = writeln!(out, "max_retries = {}", self.retry.max_retries);
        let _ = writeln!(out, "base_backoff_ms = {}", self.retry.base_backoff_ms);
        let _ = writeln!(out, "max_backoff_ms = {}", self.retry.max_backoff_ms);
        let _ = writeln!(out, "jitter_frac = {}", self.retry.jitter_frac);
        for o in &self.outages {
            let _ = writeln!(out);
            let _ = writeln!(out, "[[outage]]");
            let _ = writeln!(out, "pop = {}", o.pop);
            let _ = writeln!(out, "start = {}", o.window.start);
            let _ = writeln!(out, "end = {}", o.window.end);
        }
        for b in &self.brownouts {
            let _ = writeln!(out);
            let _ = writeln!(out, "[[brownout]]");
            let _ = writeln!(out, "start = {}", b.window.start);
            let _ = writeln!(out, "end = {}", b.window.end);
            let _ = writeln!(out, "failure_prob = {}", b.failure_prob);
        }
        for l in &self.latency {
            let _ = writeln!(out);
            let _ = writeln!(out, "[[latency]]");
            let _ = writeln!(out, "start = {}", l.window.start);
            let _ = writeln!(out, "end = {}", l.window.end);
            let _ = writeln!(out, "factor = {}", l.factor);
        }
        for p in &self.pressure {
            let _ = writeln!(out);
            let _ = writeln!(out, "[[pressure]]");
            let _ = writeln!(out, "pop = {}", p.pop);
            let _ = writeln!(out, "start = {}", p.window.start);
            let _ = writeln!(out, "end = {}", p.window.end);
            let _ = writeln!(out, "inflight_budget = {}", p.inflight_budget);
        }
        out
    }

    /// Parses a plan from the TOML subset written by [`FaultPlan::to_toml`]:
    /// top-level `key = value` pairs, a `[retry]` table, and
    /// `[[outage]]`/`[[brownout]]`/`[[latency]]`/`[[pressure]]` arrays of
    /// tables, with `#` comments. Hand-rolled because the workspace has no
    /// TOML dependency.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultPlanError`] naming the offending line for unknown
    /// sections/keys, malformed values, or failed [`FaultPlan::validate`].
    pub fn from_toml_str(input: &str) -> Result<Self, FaultPlanError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Section {
            Top,
            Retry,
            Outage,
            Brownout,
            Latency,
            Pressure,
        }

        let mut plan = FaultPlan::default();
        let mut section = Section::Top;
        for (lineno, raw) in input.lines().enumerate() {
            let lineno = lineno + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                section = match name.trim() {
                    "outage" => {
                        plan.outages.push(PopOutage {
                            pop: 0,
                            window: Window::new(0, 0),
                        });
                        Section::Outage
                    }
                    "brownout" => {
                        plan.brownouts.push(Brownout {
                            window: Window::new(0, 0),
                            failure_prob: 0.0,
                        });
                        Section::Brownout
                    }
                    "latency" => {
                        plan.latency.push(LatencyInflation {
                            window: Window::new(0, 0),
                            factor: 1.0,
                        });
                        Section::Latency
                    }
                    "pressure" => {
                        plan.pressure.push(CapacityPressure {
                            pop: 0,
                            window: Window::new(0, 0),
                            inflight_budget: 0,
                        });
                        Section::Pressure
                    }
                    other => {
                        return Err(FaultPlanError::at(
                            lineno,
                            format!("unknown array section [[{other}]]"),
                        ))
                    }
                };
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = match name.trim() {
                    "retry" => Section::Retry,
                    other => {
                        return Err(FaultPlanError::at(
                            lineno,
                            format!("unknown section [{other}]"),
                        ))
                    }
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(FaultPlanError::at(
                    lineno,
                    format!("expected `key = value`, found {line:?}"),
                ));
            };
            let key = key.trim();
            let value = value.trim();
            let bad_key = |sec: &str| {
                Err(FaultPlanError::at(
                    lineno,
                    format!("unknown key `{key}` in {sec}"),
                ))
            };
            match section {
                Section::Top => match key {
                    "seed" => plan.seed = parse_num(value, lineno)?,
                    _ => return bad_key("the top-level table"),
                },
                Section::Retry => match key {
                    "max_retries" => plan.retry.max_retries = parse_num(value, lineno)?,
                    "base_backoff_ms" => plan.retry.base_backoff_ms = parse_num(value, lineno)?,
                    "max_backoff_ms" => plan.retry.max_backoff_ms = parse_num(value, lineno)?,
                    "jitter_frac" => plan.retry.jitter_frac = parse_float(value, lineno)?,
                    _ => return bad_key("[retry]"),
                },
                Section::Outage => {
                    let Some(outage) = plan.outages.last_mut() else {
                        return Err(FaultPlanError::at(lineno, "key outside a table".into()));
                    };
                    match key {
                        "pop" => outage.pop = parse_num(value, lineno)?,
                        "start" => outage.window.start = parse_num(value, lineno)?,
                        "end" => outage.window.end = parse_num(value, lineno)?,
                        _ => return bad_key("[[outage]]"),
                    }
                }
                Section::Brownout => {
                    let Some(brownout) = plan.brownouts.last_mut() else {
                        return Err(FaultPlanError::at(lineno, "key outside a table".into()));
                    };
                    match key {
                        "start" => brownout.window.start = parse_num(value, lineno)?,
                        "end" => brownout.window.end = parse_num(value, lineno)?,
                        "failure_prob" => brownout.failure_prob = parse_float(value, lineno)?,
                        _ => return bad_key("[[brownout]]"),
                    }
                }
                Section::Latency => {
                    let Some(latency) = plan.latency.last_mut() else {
                        return Err(FaultPlanError::at(lineno, "key outside a table".into()));
                    };
                    match key {
                        "start" => latency.window.start = parse_num(value, lineno)?,
                        "end" => latency.window.end = parse_num(value, lineno)?,
                        "factor" => latency.factor = parse_float(value, lineno)?,
                        _ => return bad_key("[[latency]]"),
                    }
                }
                Section::Pressure => {
                    let Some(pressure) = plan.pressure.last_mut() else {
                        return Err(FaultPlanError::at(lineno, "key outside a table".into()));
                    };
                    match key {
                        "pop" => pressure.pop = parse_num(value, lineno)?,
                        "start" => pressure.window.start = parse_num(value, lineno)?,
                        "end" => pressure.window.end = parse_num(value, lineno)?,
                        "inflight_budget" => pressure.inflight_budget = parse_num(value, lineno)?,
                        _ => return bad_key("[[pressure]]"),
                    }
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, lineno: usize) -> Result<T, FaultPlanError> {
    value
        .parse()
        .map_err(|_| FaultPlanError::at(lineno, format!("malformed integer {value:?}")))
}

fn parse_float(value: &str, lineno: usize) -> Result<f64, FaultPlanError> {
    value
        .parse()
        .map_err(|_| FaultPlanError::at(lineno, format!("malformed number {value:?}")))
}

/// Error parsing or validating a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError {
    /// 1-based line number, when the error is tied to an input line.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl FaultPlanError {
    fn new(message: String) -> Self {
        Self {
            line: None,
            message,
        }
    }

    fn at(line: usize, message: String) -> Self {
        Self {
            line: Some(line),
            message,
        }
    }
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(line) => write!(f, "fault plan line {line}: {}", self.message),
            None => write!(f, "fault plan: {}", self.message),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// The outcome of an origin fetch attempt sequence during a brownout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OriginFetch {
    /// Retries spent beyond the first attempt.
    pub retries: u8,
    /// Whether any attempt succeeded.
    pub ok: bool,
}

impl OriginFetch {
    /// A healthy first-try fetch (no brownout active).
    pub const CLEAN: OriginFetch = OriginFetch {
        retries: 0,
        ok: true,
    };
}

/// Read-only fault view the simulator consults while serving: answers
/// "is this PoP down at `t`?", "does this origin fetch succeed, and after
/// how many retries?" and friends, all as pure functions of the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultClock {
    plan: FaultPlan,
}

impl FaultClock {
    /// Wraps a plan for serving-time queries.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `pop` is inside an outage window at `t`.
    pub fn pop_down(&self, pop: PopId, t: u64) -> bool {
        self.plan
            .outages
            .iter()
            .any(|o| o.pop == pop.raw() && o.window.contains(t))
    }

    /// The origin-fetch failure probability at `t` (the strongest of any
    /// overlapping brownouts), or `None` outside every brownout.
    pub fn failure_prob(&self, t: u64) -> Option<f64> {
        self.plan
            .brownouts
            .iter()
            .filter(|b| b.window.contains(t))
            .map(|b| b.failure_prob)
            .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.max(p))))
    }

    /// The link-latency slowdown at `t` (1.0 when no inflation window is
    /// active; the largest factor of overlapping windows otherwise).
    pub fn latency_factor(&self, t: u64) -> f64 {
        self.plan
            .latency
            .iter()
            .filter(|l| l.window.contains(t))
            .map(|l| l.factor)
            .fold(1.0, f64::max)
    }

    /// The per-second body-request budget of `pop` at `t`, or `None`
    /// when no pressure window is active (the tightest of any overlapping
    /// windows otherwise).
    pub fn pressure_budget(&self, pop: PopId, t: u64) -> Option<u32> {
        self.plan
            .pressure
            .iter()
            .filter(|p| p.pop == pop.raw() && p.window.contains(t))
            .map(|p| p.inflight_budget)
            .min()
    }

    /// Resolves an origin fetch for the request identified by `identity`
    /// at `t`: each attempt (1 + up to `max_retries` retries) fails
    /// independently with the active brownout's probability; the draw for
    /// attempt `n` is a pure function of `(seed, identity, n)`.
    ///
    /// Outside any brownout this is [`OriginFetch::CLEAN`].
    pub fn origin_fetch(&self, t: u64, identity: u64) -> OriginFetch {
        let Some(prob) = self.failure_prob(t) else {
            return OriginFetch::CLEAN;
        };
        let max = self.plan.retry.max_retries;
        for attempt in 0..=u64::from(max) {
            if unit(self.plan.seed ^ FETCH_SALT, identity, attempt) >= prob {
                return OriginFetch {
                    retries: attempt as u8,
                    ok: true,
                };
            }
        }
        OriginFetch {
            retries: max,
            ok: false,
        }
    }

    /// The jittered backoff (ms) before retry `attempt` of the request
    /// identified by `identity` — exposed so latency accounting and tests
    /// see the exact schedule the fetch model uses.
    pub fn backoff_ms(&self, identity: u64, attempt: u32) -> u64 {
        self.plan
            .retry
            .jittered_backoff_ms(self.plan.seed, identity, attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifted_moves_every_window() {
        let plan = FaultPlan::sample(9, 1_000, 4);
        let offset = 1_400_000_000;
        let shifted = plan.clone().shifted(offset);
        assert_eq!(
            shifted.outages[0].window.start,
            plan.outages[0].window.start + offset
        );
        assert_eq!(
            shifted.brownouts[0].window.end,
            plan.brownouts[0].window.end + offset
        );
        assert_eq!(
            shifted.latency[0].window.start,
            plan.latency[0].window.start + offset
        );
        assert_eq!(
            shifted.pressure[0].window.end,
            plan.pressure[0].window.end + offset
        );
        assert_eq!(shifted.seed, plan.seed, "shift leaves the seed alone");
        shifted.validate().expect("shifting preserves validity");
    }

    #[test]
    fn window_is_half_open() {
        let w = Window::new(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(
            !Window::new(5, 5).contains(5),
            "empty window matches nothing"
        );
    }

    #[test]
    fn default_plan_is_empty_and_clean() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        plan.validate().expect("default plan is valid");
        let clock = FaultClock::new(plan);
        assert!(!clock.pop_down(PopId::new(0), 0));
        assert_eq!(clock.failure_prob(0), None);
        assert_eq!(clock.latency_factor(0), 1.0);
        assert_eq!(clock.pressure_budget(PopId::new(0), 0), None);
        assert_eq!(clock.origin_fetch(0, 42), OriginFetch::CLEAN);
    }

    #[test]
    fn backoff_is_monotone_and_capped() {
        let retry = RetryPolicy {
            max_retries: 10,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
            jitter_frac: 0.5,
        };
        assert_eq!(retry.backoff_ms(0), 0);
        assert_eq!(retry.backoff_ms(1), 50);
        assert_eq!(retry.backoff_ms(2), 100);
        assert_eq!(retry.backoff_ms(6), 1_600);
        assert_eq!(retry.backoff_ms(7), 2_000, "capped");
        assert_eq!(retry.backoff_ms(100), 2_000, "huge attempts saturate");
        for n in 1..100 {
            assert!(retry.backoff_ms(n + 1) >= retry.backoff_ms(n));
        }
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let retry = RetryPolicy::default();
        for attempt in 1..20u32 {
            let a = retry.jittered_backoff_ms(7, 99, attempt);
            let b = retry.jittered_backoff_ms(7, 99, attempt);
            assert_eq!(a, b, "same inputs, same jitter");
            let base = retry.backoff_ms(attempt);
            assert!(a >= base);
            assert!((a as f64) <= base as f64 * (1.0 + retry.jitter_frac));
        }
        // Different identities draw different jitter at least once.
        let distinct = (0..32u64)
            .map(|id| retry.jittered_backoff_ms(7, id, 3))
            .collect::<std::collections::BTreeSet<_>>();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn origin_fetch_is_deterministic_and_bounded() {
        let mut plan = FaultPlan::new(0xFEED);
        plan.brownouts.push(Brownout {
            window: Window::new(0, 100),
            failure_prob: 0.9,
        });
        let clock = FaultClock::new(plan);
        let mut failures = 0;
        for identity in 0..200u64 {
            let f1 = clock.origin_fetch(50, identity);
            let f2 = clock.origin_fetch(50, identity);
            assert_eq!(f1, f2);
            assert!(f1.retries <= clock.plan().retry.max_retries);
            if !f1.ok {
                failures += 1;
                assert_eq!(f1.retries, clock.plan().retry.max_retries);
            }
        }
        // p=0.9 with 3 retries ⇒ ~66% of fetches fail outright.
        assert!(failures > 50, "{failures} failures out of 200");
        assert!(failures < 190, "{failures} failures out of 200");
        // Outside the window every fetch is clean.
        assert_eq!(clock.origin_fetch(100, 1), OriginFetch::CLEAN);
    }

    #[test]
    fn certain_failure_and_certain_success() {
        let mut plan = FaultPlan::new(1);
        plan.brownouts.push(Brownout {
            window: Window::new(0, 10),
            failure_prob: 1.0,
        });
        plan.brownouts.push(Brownout {
            window: Window::new(20, 30),
            failure_prob: 0.0,
        });
        let clock = FaultClock::new(plan);
        for identity in 0..50u64 {
            assert!(!clock.origin_fetch(5, identity).ok, "p=1 always fails");
            let clean = clock.origin_fetch(25, identity);
            assert!(clean.ok, "p=0 always succeeds");
            assert_eq!(clean.retries, 0);
        }
    }

    #[test]
    fn overlapping_windows_take_the_strictest_value() {
        let mut plan = FaultPlan::new(2);
        plan.brownouts.push(Brownout {
            window: Window::new(0, 100),
            failure_prob: 0.2,
        });
        plan.brownouts.push(Brownout {
            window: Window::new(50, 60),
            failure_prob: 0.8,
        });
        plan.latency.push(LatencyInflation {
            window: Window::new(0, 100),
            factor: 2.0,
        });
        plan.latency.push(LatencyInflation {
            window: Window::new(50, 60),
            factor: 4.0,
        });
        plan.pressure.push(CapacityPressure {
            pop: 1,
            window: Window::new(0, 100),
            inflight_budget: 10,
        });
        plan.pressure.push(CapacityPressure {
            pop: 1,
            window: Window::new(50, 60),
            inflight_budget: 2,
        });
        let clock = FaultClock::new(plan);
        assert_eq!(clock.failure_prob(55), Some(0.8));
        assert_eq!(clock.latency_factor(55), 4.0);
        assert_eq!(clock.pressure_budget(PopId::new(1), 55), Some(2));
        assert_eq!(clock.failure_prob(10), Some(0.2));
        assert_eq!(clock.pressure_budget(PopId::new(2), 55), None);
    }

    #[test]
    fn toml_round_trip() {
        let plan = FaultPlan::sample(0xABCD, 604_800, 8);
        let toml = plan.to_toml();
        let parsed = FaultPlan::from_toml_str(&toml).expect("own output parses");
        assert_eq!(parsed, plan);
    }

    #[test]
    fn toml_round_trip_empty_plan() {
        let plan = FaultPlan::new(5);
        let parsed = FaultPlan::from_toml_str(&plan.to_toml()).expect("parses");
        assert_eq!(parsed, plan);
        assert!(parsed.is_empty());
    }

    #[test]
    fn toml_parses_comments_and_whitespace() {
        let input = r"
            # a fault plan
            seed = 9   # trailing comment

            [retry]
            max_retries = 2

            [[outage]]
            pop = 3
            start = 100
            end = 200
        ";
        let plan = FaultPlan::from_toml_str(input).expect("parses");
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.retry.max_retries, 2);
        // Unspecified retry keys keep their defaults.
        assert_eq!(
            plan.retry.base_backoff_ms,
            RetryPolicy::default().base_backoff_ms
        );
        assert_eq!(plan.outages.len(), 1);
        assert_eq!(plan.outages[0].pop, 3);
        assert_eq!(plan.outages[0].window, Window::new(100, 200));
    }

    #[test]
    fn toml_rejects_unknown_keys_and_sections() {
        let err = FaultPlan::from_toml_str("banana = 1").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.to_string().contains("banana"));
        assert!(FaultPlan::from_toml_str("[nope]").is_err());
        assert!(FaultPlan::from_toml_str("[[nope]]").is_err());
        assert!(FaultPlan::from_toml_str("seed = twelve").is_err());
        assert!(FaultPlan::from_toml_str("no equals sign here").is_err());
    }

    #[test]
    fn toml_rejects_invalid_values() {
        let inverted = "[[outage]]\npop = 0\nstart = 10\nend = 5\n";
        assert!(FaultPlan::from_toml_str(inverted).is_err());
        let bad_prob = "[[brownout]]\nstart = 0\nend = 10\nfailure_prob = 1.5\n";
        assert!(FaultPlan::from_toml_str(bad_prob).is_err());
        let bad_factor = "[[latency]]\nstart = 0\nend = 10\nfactor = 0.5\n";
        assert!(FaultPlan::from_toml_str(bad_factor).is_err());
        let bad_jitter = "[retry]\njitter_frac = 2.0\n";
        assert!(FaultPlan::from_toml_str(bad_jitter).is_err());
    }

    #[test]
    fn sampled_plans_are_valid_and_seed_sensitive() {
        let a = FaultPlan::sample(1, 604_800, 4);
        let b = FaultPlan::sample(1, 604_800, 4);
        let c = FaultPlan::sample(2, 604_800, 4);
        assert_eq!(a, b, "sampling is deterministic");
        assert_ne!(a, c, "different seeds differ");
        for plan in [a, c, FaultPlan::sample(99, 60, 1)] {
            plan.validate().expect("sampled plans validate");
            assert!(!plan.is_empty());
        }
    }
}
