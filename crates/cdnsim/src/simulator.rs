//! The CDN edge simulator: routes requests to PoPs, applies HTTP
//! semantics, runs the caches, and emits finished log records.

use crate::cache::{CacheKey, CachePolicy, PolicyKind, TtlCache};
use crate::faults::{splitmix64, FaultClock, FaultPlan};
use crate::stats::ServeStats;
use crate::topology::Topology;
use oat_httplog::request::CHUNK_BYTES;
use oat_httplog::{
    CacheStatus, ColumnarDirReader, DegradedServe, HttpStatus, HttplogError, LogRecord, PopId,
    Request, RequestKind, ShardFilter,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// PoPs per region (total PoPs = 4 × this).
    pub pops_per_region: usize,
    /// Byte capacity of each PoP's cache.
    pub cache_capacity_bytes: u64,
    /// Eviction policy.
    pub policy: PolicyKind,
    /// Optional freshness TTL (ablation A5); `None` disables expiry.
    pub ttl_secs: Option<u64>,
    /// Cooperative caching: on a local miss, probe sibling PoPs and serve
    /// from them instead of the origin when they hold the object (the
    /// paper's "customized networked cache configuration", §V).
    pub cooperative: bool,
    /// Optional regional parent tier: one shared parent cache per region
    /// with this byte capacity; edge misses fall through to the parent
    /// before hitting the origin ("cache placement strategies").
    pub parent_capacity_bytes: Option<u64>,
}

impl SimConfig {
    /// A sensible default: one PoP per region, 4 GB LRU caches, no TTL.
    pub fn default_edge() -> Self {
        Self {
            pops_per_region: 1,
            cache_capacity_bytes: 4_000_000_000,
            policy: PolicyKind::Lru,
            ttl_secs: None,
            cooperative: false,
            parent_capacity_bytes: None,
        }
    }

    /// Sets the policy (builder-style).
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets per-PoP capacity (builder-style).
    pub fn with_capacity(mut self, bytes: u64) -> Self {
        self.cache_capacity_bytes = bytes;
        self
    }

    /// Sets the freshness TTL (builder-style).
    pub fn with_ttl(mut self, ttl_secs: u64) -> Self {
        self.ttl_secs = Some(ttl_secs);
        self
    }

    /// Enables cooperative sibling-PoP lookups (builder-style).
    pub fn with_cooperative(mut self) -> Self {
        self.cooperative = true;
        self
    }

    /// Adds a regional parent cache tier (builder-style).
    pub fn with_parent(mut self, capacity_bytes: u64) -> Self {
        self.parent_capacity_bytes = Some(capacity_bytes);
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::default_edge()
    }
}

/// Miss-escalation probe: given a key and its size, returns whether some
/// upstream copy (regional parent / sibling PoP) can spare the origin.
pub(crate) type MissProbe<'a> = &'a dyn Fn(&CacheKey, u64) -> bool;

/// Builds one PoP cache for `config` — the policy, wrapped in a TTL layer
/// when freshness expiry is configured.
pub(crate) fn build_policy(config: &SimConfig) -> Box<dyn CachePolicy> {
    match config.ttl_secs {
        Some(ttl) => Box::new(TtlCache::new(
            BoxedPolicy(config.policy.build(config.cache_capacity_bytes)),
            ttl,
        )),
        None => config.policy.build(config.cache_capacity_bytes),
    }
}

/// Applies HTTP + cache semantics for one request against one cache,
/// returning `(status, cache status, body bytes)` without touching any
/// statistics or building a record. This is the single source of truth for
/// request semantics — `serve`, `replay`, `replay_stats` and the sweep
/// engine all route through it.
pub(crate) fn serve_outcome(
    cache: &mut dyn CachePolicy,
    request: &Request,
    probe: Option<MissProbe<'_>>,
) -> (HttpStatus, CacheStatus, u64) {
    let now = request.timestamp;
    let object = request.object;
    match request.kind {
        RequestKind::Hotlink => (HttpStatus::FORBIDDEN, CacheStatus::Miss, 0),
        RequestKind::Beacon => (HttpStatus::NO_CONTENT, CacheStatus::Miss, 0),
        RequestKind::InvalidRange => (HttpStatus::RANGE_NOT_SATISFIABLE, CacheStatus::Miss, 0),
        RequestKind::Conditional => {
            // The client holds a fresh copy; the edge answers 304 from
            // its own copy if cached (no body either way).
            let cached = cache.contains(&CacheKey::whole(object));
            let cs = if cached {
                CacheStatus::Hit
            } else {
                CacheStatus::Miss
            };
            (HttpStatus::NOT_MODIFIED, cs, 0)
        }
        RequestKind::Full => {
            let key = CacheKey::whole(object);
            let mut hit = cache.request(key, request.object_size, now);
            if !hit {
                // Local miss: a parent/sibling copy still spares the
                // origin.
                hit = probe.is_some_and(|p| p(&key, request.object_size));
            }
            let cs = if hit {
                CacheStatus::Hit
            } else {
                CacheStatus::Miss
            };
            (HttpStatus::OK, cs, request.object_size)
        }
        RequestKind::Range { offset, length } => {
            // The CDN treats video chunks as separate cacheable objects
            // (paper §V).
            let key = CacheKey::chunk(object, (offset / CHUNK_BYTES) as u32);
            let mut hit = cache.request(key, length, now);
            if !hit {
                hit = probe.is_some_and(|p| p(&key, length));
            }
            let cs = if hit {
                CacheStatus::Hit
            } else {
                CacheStatus::Miss
            };
            (HttpStatus::PARTIAL_CONTENT, cs, length)
        }
    }
}

/// A stable identity for one request, independent of routing and thread
/// scheduling — the key every per-request fault draw (fetch failures,
/// retry jitter) is derived from, so fault decisions replay identically
/// at any thread count.
pub(crate) fn request_identity(request: &Request) -> u64 {
    let kind = match request.kind {
        RequestKind::Full => 1,
        RequestKind::Range { offset, length } => splitmix64(2 ^ offset.wrapping_mul(31) ^ length),
        RequestKind::Conditional => 3,
        RequestKind::Hotlink => 4,
        RequestKind::Beacon => 5,
        RequestKind::InvalidRange => 6,
    };
    splitmix64(
        request.timestamp
            ^ splitmix64(request.user.raw() ^ splitmix64(request.object.raw() ^ kind)),
    )
}

/// The body-carrying cache lookup a request implies: `(key, bytes,
/// success status)`, or `None` for bodyless kinds.
fn body_key(request: &Request) -> Option<(CacheKey, u64, HttpStatus)> {
    match request.kind {
        RequestKind::Full => Some((
            CacheKey::whole(request.object),
            request.object_size,
            HttpStatus::OK,
        )),
        RequestKind::Range { offset, length } => Some((
            CacheKey::chunk(request.object, (offset / CHUNK_BYTES) as u32),
            length,
            HttpStatus::PARTIAL_CONTENT,
        )),
        _ => None,
    }
}

/// What one faulted serve produced, before a record or stats entry is
/// built from it.
struct DegradedOutcome {
    status: HttpStatus,
    cache_status: CacheStatus,
    bytes: u64,
    degraded: DegradedServe,
    retries: u8,
}

impl DegradedOutcome {
    fn shed(retries: u8) -> Self {
        Self {
            status: HttpStatus::SERVICE_UNAVAILABLE,
            cache_status: CacheStatus::Miss,
            bytes: 0,
            degraded: DegradedServe::Shed,
            retries,
        }
    }
}

/// Applies fault-aware HTTP semantics for one request against one cache.
///
/// Outside a brownout (or for bodyless kinds) this is exactly
/// [`serve_outcome`], tagged `Failover` when serving at a sibling PoP.
/// During an origin brownout, for body-carrying requests:
///
/// 1. A fresh cached copy ([`CachePolicy::peek`]) serves normally — the
///    origin is not involved.
/// 2. Otherwise the origin fetch is resolved through the plan's retry
///    schedule. Success serves normally (the retries are accounted);
/// 3. failure serves a present-but-stale copy as `Stale`
///    (stale-while-revalidate) **without mutating the cache** — no TTL
///    refresh, no recency bump, no admission — because no origin fetch
///    actually completed;
/// 4. failure with no cached copy sheds the request with `503`.
///
/// Escalation probes (parent tier / cooperative siblings) are skipped on
/// a failed fetch: in this model they revalidate through the same
/// browning origin. Conditional 304s are answered from the edge's own
/// validators and never consult the origin.
fn degraded_outcome(
    cache: &mut dyn CachePolicy,
    request: &Request,
    probe: Option<MissProbe<'_>>,
    clock: &FaultClock,
    failover: bool,
) -> DegradedOutcome {
    let base_degraded = if failover {
        DegradedServe::Failover
    } else {
        DegradedServe::None
    };
    let t = request.timestamp;
    if let Some((key, bytes, ok_status)) = body_key(request) {
        if clock.failure_prob(t).is_some() && !cache.peek(&key, t) {
            let fetch = clock.origin_fetch(t, request_identity(request));
            if !fetch.ok {
                return if cache.contains(&key) {
                    DegradedOutcome {
                        status: ok_status,
                        cache_status: CacheStatus::Hit,
                        bytes,
                        degraded: DegradedServe::Stale,
                        retries: fetch.retries,
                    }
                } else {
                    DegradedOutcome::shed(fetch.retries)
                };
            }
            let (status, cache_status, bytes) = serve_outcome(cache, request, probe);
            return DegradedOutcome {
                status,
                cache_status,
                bytes,
                degraded: base_degraded,
                retries: fetch.retries,
            };
        }
    }
    let (status, cache_status, bytes) = serve_outcome(cache, request, probe);
    DegradedOutcome {
        status,
        cache_status,
        bytes,
        degraded: base_degraded,
        retries: 0,
    }
}

struct Pop {
    cache: Box<dyn CachePolicy>,
    stats: ServeStats,
    /// Capacity-pressure token bucket: the second `bucket_count` refers
    /// to. `u64::MAX` until the first pressured request arrives.
    bucket_sec: u64,
    /// Body-carrying requests admitted during `bucket_sec`.
    bucket_count: u32,
}

impl std::fmt::Debug for Pop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pop")
            .field("entries", &self.cache.len())
            .field("bytes", &self.cache.bytes_used())
            .finish()
    }
}

/// A multi-PoP CDN edge.
///
/// `serve` takes `&self` (PoPs are individually locked), so traces can be
/// replayed in parallel with [`Simulator::replay`].
///
/// # Example
///
/// ```
/// use oat_cdnsim::{SimConfig, Simulator};
/// use oat_httplog::Request;
///
/// let sim = Simulator::new(&SimConfig::default_edge());
/// let record = sim.serve(Request::example());
/// assert_eq!(record.status.code(), 206);
/// ```
#[derive(Debug)]
pub struct Simulator {
    topology: Topology,
    pops: Vec<Mutex<Pop>>,
    cooperative: bool,
    /// One parent cache per region, when the tier is configured.
    parents: Vec<Mutex<Box<dyn CachePolicy>>>,
    /// Fault schedule, when degraded serving is enabled
    /// (see [`Simulator::with_faults`]).
    faults: Option<FaultClock>,
}

impl Simulator {
    /// Builds a simulator from a config.
    pub fn new(config: &SimConfig) -> Self {
        let topology = Topology::new(config.pops_per_region.max(1));
        let pops = topology
            .pops()
            .map(|_| {
                Mutex::new(Pop {
                    cache: build_policy(config),
                    stats: ServeStats::new(),
                    bucket_sec: u64::MAX,
                    bucket_count: 0,
                })
            })
            .collect();
        let parents = match config.parent_capacity_bytes {
            Some(capacity) => oat_httplog::Region::ALL
                .iter()
                .map(|_| Mutex::new(config.policy.build(capacity)))
                .collect(),
            None => Vec::new(),
        };
        Self {
            topology,
            pops,
            cooperative: config.cooperative,
            parents,
            faults: None,
        }
    }

    /// Attaches a fault schedule (builder-style): all subsequent serving
    /// consults the plan for PoP outages, origin brownouts, latency
    /// inflation and capacity pressure, degrading gracefully (failover,
    /// stale-while-revalidate, load shedding) instead of assuming a
    /// healthy CDN. An empty plan leaves behavior identical to a
    /// fault-free simulator.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(FaultClock::new(plan));
        self
    }

    /// The attached fault plan, if degraded serving is enabled.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(FaultClock::plan)
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Whether any miss-escalation path (sibling probe / parent tier) is
    /// configured.
    fn escalates(&self) -> bool {
        self.cooperative || !self.parents.is_empty()
    }

    /// Serves one request, returning the finished log record.
    pub fn serve(&self, request: Request) -> LogRecord {
        if let Some(clock) = &self.faults {
            let (pop_id, outcome) = self.serve_faulted_core(clock, &request);
            return request.into_record_degraded(
                pop_id,
                outcome.cache_status,
                outcome.status,
                outcome.bytes,
                outcome.degraded,
                outcome.retries,
            );
        }
        let pop_id = self.topology.route(request.region, request.user);
        let mut pop = self.pops[pop_id.raw() as usize].lock();
        if self.escalates() {
            self.serve_at(&mut pop, pop_id, request)
        } else {
            Self::serve_local(&mut pop, pop_id, request)
        }
    }

    /// The PoP that actually serves a request routed to `routed` at `t`:
    /// `routed` itself when healthy, else the first healthy sibling in
    /// deterministic wrap-around order, else `None` (the whole region is
    /// dark and the request is shed).
    fn effective_pop(&self, clock: &FaultClock, routed: PopId, t: u64) -> Option<PopId> {
        if !clock.pop_down(routed, t) {
            return Some(routed);
        }
        self.topology
            .siblings(routed)
            .find(|&sibling| !clock.pop_down(sibling, t))
    }

    /// The partition a request belongs to for parallel replay: the PoP
    /// whose cache and statistics the serve touches. With faults this is
    /// the *effective* PoP (failover target; the routed PoP for a
    /// region-dark shed), so each PoP's state is still owned by exactly
    /// one replay worker.
    fn partition_index(&self, request: &Request) -> usize {
        let routed = self.topology.route(request.region, request.user);
        let pop = match &self.faults {
            Some(clock) => self
                .effective_pop(clock, routed, request.timestamp)
                .unwrap_or(routed),
            None => routed,
        };
        pop.raw() as usize
    }

    /// Serves one request under the fault schedule, updating the serving
    /// PoP's statistics and returning `(serving PoP, outcome)`.
    ///
    /// Check order: PoP outage (failover / region-dark shed), then
    /// capacity pressure (per-second admission budget on body-carrying
    /// requests), then [`degraded_outcome`] for origin-brownout handling.
    fn serve_faulted_core(
        &self,
        clock: &FaultClock,
        request: &Request,
    ) -> (PopId, DegradedOutcome) {
        let t = request.timestamp;
        let routed = self.topology.route(request.region, request.user);
        let Some(pop_id) = self.effective_pop(clock, routed, t) else {
            // Every PoP of the region is down: shed, accounted to the
            // routed PoP (the one the user was sent to).
            let outcome = DegradedOutcome::shed(0);
            let mut pop = self.pops[routed.raw() as usize].lock();
            pop.stats
                .record(request.object, outcome.status, false, outcome.bytes);
            pop.stats
                .note_degraded(outcome.degraded, outcome.retries, outcome.bytes);
            return (routed, outcome);
        };
        let failover = pop_id != routed;
        let mut pop = self.pops[pop_id.raw() as usize].lock();
        // Capacity pressure: shed body-carrying requests beyond the
        // per-second budget before they touch the cache. Requests arrive
        // in trace order per PoP, so the bucket is deterministic.
        if body_key(request).is_some() {
            if let Some(budget) = clock.pressure_budget(pop_id, t) {
                if pop.bucket_sec != t {
                    pop.bucket_sec = t;
                    pop.bucket_count = 0;
                }
                if pop.bucket_count >= budget {
                    let outcome = DegradedOutcome::shed(0);
                    pop.stats
                        .record(request.object, outcome.status, false, outcome.bytes);
                    pop.stats
                        .note_degraded(outcome.degraded, outcome.retries, outcome.bytes);
                    return (pop_id, outcome);
                }
                pop.bucket_count += 1;
            }
        }
        let outcome = if self.escalates() {
            let probe = self.escalation_probe(pop_id, request.region, t);
            degraded_outcome(pop.cache.as_mut(), request, Some(&probe), clock, failover)
        } else {
            degraded_outcome(pop.cache.as_mut(), request, None, clock, failover)
        };
        if outcome.status != HttpStatus::SERVICE_UNAVAILABLE && clock.latency_factor(t) > 1.0 {
            pop.stats.note_inflated();
        }
        pop.stats.record(
            request.object,
            outcome.status,
            outcome.cache_status.is_hit(),
            outcome.bytes,
        );
        pop.stats
            .note_degraded(outcome.degraded, outcome.retries, outcome.bytes);
        (pop_id, outcome)
    }

    /// The miss-escalation probe for a PoP: the regional parent (if any)
    /// is consulted first — a real fetch that admits into the parent —
    /// then siblings are probed with `try_lock` (a busy sibling is treated
    /// as a miss, mirroring probe timeouts).
    fn escalation_probe(
        &self,
        pop_id: PopId,
        region: oat_httplog::Region,
        timestamp: u64,
    ) -> impl Fn(&CacheKey, u64) -> bool + '_ {
        move |key: &CacheKey, size: u64| {
            if !self.parents.is_empty() {
                let mut parent = self.parents[region.code() as usize].lock();
                if parent.request(*key, size, timestamp) {
                    return true;
                }
            }
            self.cooperative
                && self.pops.iter().enumerate().any(|(i, sibling)| {
                    if i == pop_id.raw() as usize {
                        return false;
                    }
                    sibling.try_lock().is_some_and(|s| s.cache.contains(key))
                })
        }
    }

    /// Serves with miss escalation. The local PoP lock is held.
    fn serve_at(&self, pop: &mut Pop, pop_id: PopId, request: Request) -> LogRecord {
        let probe = self.escalation_probe(pop_id, request.region, request.timestamp);
        Self::serve_inner(pop, pop_id, request, Some(&probe))
    }

    fn serve_local(pop: &mut Pop, pop_id: PopId, request: Request) -> LogRecord {
        Self::serve_inner(pop, pop_id, request, None)
    }

    fn serve_inner(
        pop: &mut Pop,
        pop_id: PopId,
        request: Request,
        probe: Option<MissProbe<'_>>,
    ) -> LogRecord {
        let (status, cache_status, bytes) = serve_outcome(pop.cache.as_mut(), &request, probe);
        pop.stats
            .record(request.object, status, cache_status.is_hit(), bytes);
        request.into_record(pop_id, cache_status, status, bytes)
    }

    /// Serves one request, updating statistics but skipping the
    /// [`LogRecord`] — the counters-only equivalent of [`Simulator::serve`]
    /// for callers that only read [`Simulator::stats`] afterwards.
    pub fn serve_stats(&self, request: &Request) -> (HttpStatus, CacheStatus, u64) {
        if let Some(clock) = &self.faults {
            let (_, outcome) = self.serve_faulted_core(clock, request);
            return (outcome.status, outcome.cache_status, outcome.bytes);
        }
        let pop_id = self.topology.route(request.region, request.user);
        let mut pop = self.pops[pop_id.raw() as usize].lock();
        let (status, cache_status, bytes) = if self.escalates() {
            let probe = self.escalation_probe(pop_id, request.region, request.timestamp);
            serve_outcome(pop.cache.as_mut(), request, Some(&probe))
        } else {
            serve_outcome(pop.cache.as_mut(), request, None)
        };
        pop.stats
            .record(request.object, status, cache_status.is_hit(), bytes);
        (status, cache_status, bytes)
    }

    /// Replays a time-sorted request stream, in parallel across PoPs, and
    /// returns the records in the input order.
    pub fn replay(&self, requests: Vec<Request>) -> Vec<LogRecord> {
        if self.faults.is_some() && self.escalates() {
            // Faulted escalation serves serially in trace order, so
            // cross-PoP probe interleavings (and therefore the emitted
            // records) are deterministic.
            return requests.into_iter().map(|r| self.serve(r)).collect();
        }
        let total = requests.len();
        // Partition by serving PoP, remembering original positions. A
        // counting pass pre-sizes each partition so large traces never
        // reallocate mid-partitioning.
        let mut counts = vec![0usize; self.pops.len()];
        for req in &requests {
            counts[self.partition_index(req)] += 1;
        }
        let mut partitions: Vec<Vec<(usize, Request)>> =
            counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (i, req) in requests.into_iter().enumerate() {
            let idx = self.partition_index(&req);
            partitions[idx].push((i, req));
        }

        // Each worker returns its own (position, record) vector; the merge
        // into input order happens after the scope joins, so no thread ever
        // contends on a shared output lock.
        let merged: Vec<Vec<(usize, LogRecord)>> = match crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .into_iter()
                .enumerate()
                .filter(|(_, part)| !part.is_empty())
                .map(|(pop_idx, part)| {
                    let pops = &self.pops;
                    let this = &*self;
                    scope.spawn(move |_| {
                        let pop_id = PopId::new(pop_idx as u16);
                        let mut local = Vec::with_capacity(part.len());
                        if this.faults.is_some() {
                            // Per-request serve: the partition already
                            // groups by effective PoP, so only this
                            // worker locks this PoP's state.
                            for (i, req) in part {
                                local.push((i, this.serve(req)));
                            }
                        } else if this.escalates() {
                            // Lock per request so sibling probes can interleave.
                            for (i, req) in part {
                                let mut pop = pops[pop_idx].lock();
                                local.push((i, this.serve_at(&mut pop, pop_id, req)));
                            }
                        } else {
                            let mut pop = pops[pop_idx].lock();
                            for (i, req) in part {
                                local.push((i, Self::serve_local(&mut pop, pop_id, req)));
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(local) => local,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        }) {
            Ok(merged) => merged,
            Err(payload) => std::panic::resume_unwind(payload),
        };

        let mut slots: Vec<Option<LogRecord>> = (0..total).map(|_| None).collect();
        for (i, rec) in merged.into_iter().flatten() {
            slots[i] = Some(rec);
        }
        // Every input index landed in exactly one partition, so every
        // slot is filled; flatten rather than unwrap per slot.
        slots.into_iter().flatten().collect()
    }

    /// Counters-only replay: serves a time-sorted request slice and
    /// returns the aggregated statistics without materializing a
    /// [`LogRecord`] per request — no per-record allocation, no output
    /// vector, no order-restoring merge. The trace is borrowed, never
    /// cloned. Statistics equal [`Simulator::replay`] followed by
    /// [`Simulator::stats`] on the same trace.
    ///
    /// Non-escalating configurations replay in parallel across PoPs (each
    /// PoP's subsequence is independent). Escalating configurations
    /// (cooperative siblings / parent tier) are served serially in trace
    /// order, so cross-PoP probe interleavings are deterministic — unlike
    /// `replay`, whose concurrent `try_lock` probes may resolve
    /// differently from run to run.
    pub fn replay_stats(&self, requests: &[Request]) -> ServeStats {
        if self.escalates() {
            for req in requests {
                self.serve_stats(req);
            }
            return self.stats();
        }
        assert!(
            requests.len() <= u32::MAX as usize,
            "replay_stats indexes requests with u32"
        );
        let mut counts = vec![0usize; self.pops.len()];
        for req in requests {
            counts[self.partition_index(req)] += 1;
        }
        let mut partitions: Vec<Vec<u32>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (i, req) in requests.iter().enumerate() {
            partitions[self.partition_index(req)].push(i as u32);
        }
        let scope_result = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .iter()
                .enumerate()
                .filter(|(_, part)| !part.is_empty())
                .map(|(pop_idx, part)| {
                    let pops = &self.pops;
                    let this = &*self;
                    scope.spawn(move |_| {
                        if this.faults.is_some() {
                            // Per-request serve with internal locking; the
                            // effective-PoP partition keeps it uncontended.
                            for &i in part {
                                if let Some(req) = requests.get(i as usize) {
                                    this.serve_stats(req);
                                }
                            }
                            return;
                        }
                        let mut pop = pops[pop_idx].lock();
                        for &i in part {
                            let Some(req) = requests.get(i as usize) else {
                                continue;
                            };
                            let (status, cache_status, bytes) =
                                serve_outcome(pop.cache.as_mut(), req, None);
                            pop.stats
                                .record(req.object, status, cache_status.is_hit(), bytes);
                        }
                    })
                })
                .collect();
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        if let Err(payload) = scope_result {
            std::panic::resume_unwind(payload);
        }
        self.stats()
    }

    /// Replays a stream of time-sorted request batches, handing each batch
    /// of finished records to `sink` as soon as it is served.
    ///
    /// Cache and statistics state carries across batches, and each batch is
    /// replayed with [`Simulator::replay`] (parallel across PoPs, records
    /// in request order) — so the concatenated sink output is identical to
    /// a single `replay` over the concatenated batches, while only one
    /// batch of requests and one batch of records are ever in flight.
    pub fn replay_stream<I, F>(&self, batches: I, mut sink: F)
    where
        I: IntoIterator<Item = Vec<Request>>,
        F: FnMut(Vec<LogRecord>),
    {
        for batch in batches {
            sink(self.replay(batch));
        }
    }

    /// Replays a columnar shard directory out-of-core, handing each batch
    /// of finished records to `sink` as soon as it is served.
    ///
    /// Requests are streamed from disk `batch_rows` at a time (`0` picks the
    /// reader's default), so peak memory is one request batch plus one
    /// record batch regardless of trace size. Cache and statistics state
    /// carries across batches exactly as in [`Simulator::replay_stream`]:
    /// the concatenated sink output is identical to one
    /// [`Simulator::replay`] over the whole materialized trace.
    ///
    /// Returns the number of requests replayed.
    pub fn replay_columnar<F>(
        &self,
        reader: &ColumnarDirReader<Request>,
        batch_rows: usize,
        mut sink: F,
    ) -> Result<u64, HttplogError>
    where
        F: FnMut(Vec<LogRecord>),
    {
        reader.scan(&ShardFilter::all(), batch_rows, |batch| {
            sink(self.replay(batch.to_vec()));
        })
    }

    /// Pushes (prefetches) entries into *every* PoP cache — the paper's
    /// "push copies of popular objects closer to end-users" implication.
    pub fn preload<I>(&self, placements: I)
    where
        I: IntoIterator<Item = (CacheKey, u64)>,
    {
        let placements: Vec<(CacheKey, u64)> = placements.into_iter().collect();
        for pop in &self.pops {
            let mut pop = pop.lock();
            for &(key, size) in &placements {
                pop.cache.insert(key, size, 0);
            }
        }
    }

    /// Aggregated statistics across all PoPs.
    pub fn stats(&self) -> ServeStats {
        let mut total = ServeStats::new();
        for pop in &self.pops {
            total.merge(&pop.lock().stats);
        }
        total
    }

    /// Statistics of one PoP, if the id is valid.
    ///
    /// A valid-but-idle PoP returns `Some` zeroed counters; `None` means
    /// the id does not exist in this topology. Callers can therefore
    /// distinguish "nothing was routed here" from "no such PoP".
    pub fn pop_stats(&self, pop: PopId) -> Option<ServeStats> {
        self.pops
            .get(pop.raw() as usize)
            .map(|p| p.lock().stats.clone())
    }
}

/// Adapter: lets a boxed policy satisfy the generic `TtlCache<C>` wrapper.
#[derive(Debug)]
struct BoxedPolicy(Box<dyn CachePolicy>);

impl CachePolicy for BoxedPolicy {
    fn request(&mut self, key: CacheKey, size: u64, now: u64) -> bool {
        self.0.request(key, size, now)
    }
    fn insert(&mut self, key: CacheKey, size: u64, now: u64) {
        self.0.insert(key, size, now)
    }
    fn contains(&self, key: &CacheKey) -> bool {
        self.0.contains(key)
    }
    fn peek(&self, key: &CacheKey, now: u64) -> bool {
        self.0.peek(key, now)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn bytes_used(&self) -> u64 {
        self.0.bytes_used()
    }
    fn capacity_bytes(&self) -> u64 {
        self.0.capacity_bytes()
    }
    fn evictions(&self) -> u64 {
        self.0.evictions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_httplog::{ObjectId, Region, UserId};

    fn request(object: u64, user: u64, ts: u64, kind: RequestKind) -> Request {
        Request {
            timestamp: ts,
            object: ObjectId::new(object),
            user: UserId::new(user),
            kind,
            region: Region::Europe,
            ..Request::example()
        }
    }

    #[test]
    fn full_request_miss_then_hit() {
        let sim = Simulator::new(&SimConfig::default_edge());
        let r1 = sim.serve(request(1, 1, 0, RequestKind::Full));
        assert_eq!(r1.status, HttpStatus::OK);
        assert_eq!(r1.cache_status, CacheStatus::Miss);
        assert_eq!(r1.bytes_served, r1.object_size);
        let r2 = sim.serve(request(1, 1, 1, RequestKind::Full));
        assert_eq!(r2.cache_status, CacheStatus::Hit);
        let stats = sim.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hit_ratio(), Some(0.5));
    }

    #[test]
    fn chunks_cached_independently() {
        let sim = Simulator::new(&SimConfig::default_edge());
        let k0 = RequestKind::Range {
            offset: 0,
            length: CHUNK_BYTES,
        };
        let k1 = RequestKind::Range {
            offset: CHUNK_BYTES,
            length: CHUNK_BYTES,
        };
        assert_eq!(
            sim.serve(request(1, 1, 0, k0)).cache_status,
            CacheStatus::Miss
        );
        assert_eq!(
            sim.serve(request(1, 1, 1, k1)).cache_status,
            CacheStatus::Miss
        );
        assert_eq!(
            sim.serve(request(1, 2, 2, k0)).cache_status,
            CacheStatus::Hit
        );
        let rec = sim.serve(request(1, 2, 3, k1));
        assert_eq!(rec.cache_status, CacheStatus::Hit);
        assert_eq!(rec.status, HttpStatus::PARTIAL_CONTENT);
        assert_eq!(rec.bytes_served, CHUNK_BYTES);
    }

    #[test]
    fn failure_kinds_bodyless() {
        let sim = Simulator::new(&SimConfig::default_edge());
        let forbidden = sim.serve(request(1, 1, 0, RequestKind::Hotlink));
        assert_eq!(forbidden.status, HttpStatus::FORBIDDEN);
        assert_eq!(forbidden.bytes_served, 0);
        let bad = sim.serve(request(1, 1, 1, RequestKind::InvalidRange));
        assert_eq!(bad.status, HttpStatus::RANGE_NOT_SATISFIABLE);
        // Neither touched the cache nor the hit/miss counters.
        let stats = sim.stats();
        assert_eq!(stats.hits + stats.misses, 0);
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn conditional_is_304_without_body() {
        let sim = Simulator::new(&SimConfig::default_edge());
        // Cold conditional: edge doesn't have it either.
        let cold = sim.serve(request(9, 1, 0, RequestKind::Conditional));
        assert_eq!(cold.status, HttpStatus::NOT_MODIFIED);
        assert_eq!(cold.cache_status, CacheStatus::Miss);
        // Warm the edge, then revalidate.
        sim.serve(request(9, 1, 1, RequestKind::Full));
        let warm = sim.serve(request(9, 2, 2, RequestKind::Conditional));
        assert_eq!(warm.cache_status, CacheStatus::Hit);
        assert_eq!(warm.bytes_served, 0);
    }

    #[test]
    fn users_in_different_regions_use_different_pops() {
        let sim = Simulator::new(&SimConfig::default_edge());
        let mut eu = request(1, 1, 0, RequestKind::Full);
        eu.region = Region::Europe;
        let mut asia = request(1, 2, 1, RequestKind::Full);
        asia.region = Region::Asia;
        let r1 = sim.serve(eu);
        let r2 = sim.serve(asia);
        assert_ne!(r1.pop, r2.pop);
        // Each PoP cached independently: both are misses.
        assert_eq!(r2.cache_status, CacheStatus::Miss);
        assert!(sim.pop_stats(r1.pop).unwrap().requests == 1);
        assert!(sim.pop_stats(PopId::new(99)).is_none());
    }

    #[test]
    fn replay_preserves_order_and_matches_serial() {
        let make = |n: u64| -> Vec<Request> {
            (0..n)
                .map(|i| {
                    let mut r = request(i % 7, i % 13, i, RequestKind::Full);
                    r.region = Region::ALL[(i % 4) as usize];
                    r
                })
                .collect()
        };
        let parallel_sim = Simulator::new(&SimConfig::default_edge());
        let parallel = parallel_sim.replay(make(500));
        let serial_sim = Simulator::new(&SimConfig::default_edge());
        let serial: Vec<LogRecord> = make(500).into_iter().map(|r| serial_sim.serve(r)).collect();
        assert_eq!(parallel, serial);
        assert_eq!(parallel_sim.stats(), serial_sim.stats());
    }

    #[test]
    fn replay_stream_matches_replay() {
        let make = |n: u64| -> Vec<Request> {
            (0..n)
                .map(|i| {
                    let mut r = request(i % 7, i % 13, i, RequestKind::Full);
                    r.region = Region::ALL[(i % 4) as usize];
                    r
                })
                .collect()
        };
        let batch_sim = Simulator::new(&SimConfig::default_edge());
        let whole = batch_sim.replay(make(500));

        let stream_sim = Simulator::new(&SimConfig::default_edge());
        let mut streamed = Vec::new();
        let batches: Vec<Vec<Request>> = make(500).chunks(64).map(<[Request]>::to_vec).collect();
        stream_sim.replay_stream(batches, |records| streamed.extend(records));
        assert_eq!(whole, streamed);
        assert_eq!(batch_sim.stats(), stream_sim.stats());
    }

    #[test]
    fn replay_columnar_matches_replay() {
        use oat_httplog::ColumnarDirWriter;

        let dir = std::env::temp_dir()
            .join("oat-cdnsim-tests")
            .join("replay-columnar");
        let _ = std::fs::remove_dir_all(&dir);
        let make = |n: u64| -> Vec<Request> {
            (0..n)
                .map(|i| {
                    let mut r = request(i % 7, i % 13, i, RequestKind::Full);
                    r.region = Region::ALL[(i % 4) as usize];
                    r
                })
                .collect()
        };
        let mut writer = ColumnarDirWriter::new(&dir, "req", 128).expect("create writer");
        writer.push_batch(&make(500)).expect("spool");
        writer.finish().expect("finish");

        let batch_sim = Simulator::new(&SimConfig::default_edge());
        let whole = batch_sim.replay(make(500));

        let reader = ColumnarDirReader::open(&dir, "req").expect("open dir");
        let columnar_sim = Simulator::new(&SimConfig::default_edge());
        let mut streamed = Vec::new();
        let replayed = columnar_sim
            .replay_columnar(&reader, 64, |records| streamed.extend(records))
            .expect("replay columnar");
        assert_eq!(replayed, 500);
        assert_eq!(whole, streamed);
        assert_eq!(batch_sim.stats(), columnar_sim.stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn mixed_trace(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                let kind = match i % 6 {
                    0 | 1 => RequestKind::Full,
                    2 => RequestKind::Range {
                        offset: 0,
                        length: CHUNK_BYTES,
                    },
                    3 => RequestKind::Conditional,
                    4 => RequestKind::Hotlink,
                    _ => RequestKind::Beacon,
                };
                let mut r = request(i % 9, i % 13, i, kind);
                r.region = Region::ALL[(i % 4) as usize];
                r
            })
            .collect()
    }

    #[test]
    fn replay_stats_matches_replay() {
        let full = Simulator::new(&SimConfig::default_edge());
        full.replay(mixed_trace(600));
        let fast = Simulator::new(&SimConfig::default_edge());
        let stats = fast.replay_stats(&mixed_trace(600));
        assert_eq!(stats, full.stats());
        assert_eq!(fast.stats(), full.stats());
    }

    #[test]
    fn replay_stats_matches_serial_serve_under_escalation() {
        for config in [
            SimConfig::default_edge().with_cooperative(),
            SimConfig {
                pops_per_region: 2,
                ..SimConfig::default_edge()
            }
            .with_parent(1_000_000_000),
        ] {
            let serial = Simulator::new(&config);
            for req in mixed_trace(400) {
                serial.serve(req);
            }
            let fast = Simulator::new(&config);
            let stats = fast.replay_stats(&mixed_trace(400));
            assert_eq!(stats, serial.stats());
        }
    }

    #[test]
    fn serve_stats_matches_serve() {
        let by_record = Simulator::new(&SimConfig::default_edge());
        let records: Vec<LogRecord> = mixed_trace(200)
            .into_iter()
            .map(|r| by_record.serve(r))
            .collect();
        let by_stats = Simulator::new(&SimConfig::default_edge());
        for (req, rec) in mixed_trace(200).iter().zip(&records) {
            let (status, cache_status, bytes) = by_stats.serve_stats(req);
            assert_eq!(
                (status, cache_status, bytes),
                (rec.status, rec.cache_status, rec.bytes_served)
            );
        }
        assert_eq!(by_stats.stats(), by_record.stats());
    }

    #[test]
    fn preload_turns_first_requests_into_hits() {
        let sim = Simulator::new(&SimConfig::default_edge());
        sim.preload([(CacheKey::whole(ObjectId::new(5)), 1_000)]);
        let mut r = request(5, 1, 0, RequestKind::Full);
        r.object_size = 1_000;
        assert_eq!(sim.serve(r).cache_status, CacheStatus::Hit);
    }

    #[test]
    fn ttl_config_expires_entries() {
        let config = SimConfig::default_edge().with_ttl(10);
        let sim = Simulator::new(&config);
        sim.serve(request(1, 1, 0, RequestKind::Full));
        assert_eq!(
            sim.serve(request(1, 1, 5, RequestKind::Full)).cache_status,
            CacheStatus::Hit
        );
        assert_eq!(
            sim.serve(request(1, 1, 100, RequestKind::Full))
                .cache_status,
            CacheStatus::Miss,
            "stale entry revalidates as a miss"
        );
    }

    #[test]
    fn sim_config_builders() {
        let c = SimConfig::default_edge()
            .with_policy(PolicyKind::Slru)
            .with_capacity(123)
            .with_ttl(7)
            .with_cooperative();
        assert_eq!(c.policy, PolicyKind::Slru);
        assert_eq!(c.cache_capacity_bytes, 123);
        assert_eq!(c.ttl_secs, Some(7));
        assert!(c.cooperative);
    }

    #[test]
    fn cooperative_probe_finds_sibling_copies() {
        let sim = Simulator::new(&SimConfig::default_edge().with_cooperative());
        // Warm the Europe PoP.
        let mut eu = request(1, 1, 0, RequestKind::Full);
        eu.region = Region::Europe;
        assert_eq!(sim.serve(eu).cache_status, CacheStatus::Miss);
        // An Asia user misses locally but the Europe copy saves the origin
        // fetch under cooperation.
        let mut asia = request(1, 2, 1, RequestKind::Full);
        asia.region = Region::Asia;
        assert_eq!(sim.serve(asia.clone()).cache_status, CacheStatus::Hit);
        // Without cooperation the same sequence is a local miss.
        let plain = Simulator::new(&SimConfig::default_edge());
        let mut eu2 = request(1, 1, 0, RequestKind::Full);
        eu2.region = Region::Europe;
        plain.serve(eu2);
        asia.user = UserId::new(99);
        assert_eq!(plain.serve(asia).cache_status, CacheStatus::Miss);
    }

    #[test]
    fn cooperative_replay_only_adds_hits() {
        let make = |n: u64| -> Vec<Request> {
            (0..n)
                .map(|i| {
                    let mut r = request(i % 5, i % 7, i, RequestKind::Full);
                    r.region = Region::ALL[(i % 4) as usize];
                    r
                })
                .collect()
        };
        let coop = Simulator::new(&SimConfig::default_edge().with_cooperative());
        let coop_records = coop.replay(make(400));
        let plain = Simulator::new(&SimConfig::default_edge());
        let plain_records = plain.replay(make(400));
        assert_eq!(coop_records.len(), plain_records.len());
        let hits =
            |records: &[LogRecord]| records.iter().filter(|r| r.cache_status.is_hit()).count();
        assert!(hits(&coop_records) >= hits(&plain_records));
        assert!(hits(&coop_records) > 0);
    }

    #[test]
    fn parent_tier_serves_repeat_regional_misses() {
        // Tiny edge caches, large regional parent: two users behind
        // different PoPs of the same region share the parent copy.
        let config = SimConfig {
            pops_per_region: 2,
            cache_capacity_bytes: 1, // effectively no edge caching
            ..SimConfig::default_edge()
        }
        .with_parent(1_000_000_000);
        let sim = Simulator::new(&config);
        // Find two users of the same region routed to different PoPs.
        let topo = sim.topology().clone();
        let (u1, u2) = {
            let mut first = None;
            let mut pair = None;
            for uid in 0..100u64 {
                let pop = topo.route(Region::Europe, UserId::new(uid));
                match first {
                    None => first = Some((uid, pop)),
                    Some((fuid, fpop)) if pop != fpop => {
                        pair = Some((fuid, uid));
                        break;
                    }
                    _ => {}
                }
            }
            pair.expect("two PoPs per region must both receive users")
        };
        let mut a = request(1, u1, 0, RequestKind::Full);
        a.region = Region::Europe;
        let mut b = request(1, u2, 1, RequestKind::Full);
        b.region = Region::Europe;
        // First fetch: parent miss (admits into parent).
        assert_eq!(sim.serve(a).cache_status, CacheStatus::Miss);
        // Second user, different PoP, same region: parent hit.
        assert_eq!(sim.serve(b.clone()).cache_status, CacheStatus::Hit);
        // A user in another region misses (its parent is separate).
        let mut c = request(1, 7, 2, RequestKind::Full);
        c.region = Region::Asia;
        assert_eq!(sim.serve(c).cache_status, CacheStatus::Miss);
    }

    #[test]
    fn pop_stats_distinguishes_idle_from_unknown() {
        let sim = Simulator::new(&SimConfig::default_edge());
        // No traffic yet: every valid PoP reports zeroed stats.
        let idle = sim.pop_stats(PopId::new(0)).expect("valid PoP");
        assert_eq!(idle.requests, 0);
        assert_eq!(idle, ServeStats::new());
        // An id outside the topology is unknown, not idle.
        assert!(sim.pop_stats(PopId::new(99)).is_none());
    }

    #[test]
    fn empty_fault_plan_is_a_noop() {
        let healthy = Simulator::new(&SimConfig::default_edge());
        let healthy_records = healthy.replay(mixed_trace(300));
        let faulted = Simulator::new(&SimConfig::default_edge()).with_faults(FaultPlan::new(1));
        let faulted_records = faulted.replay(mixed_trace(300));
        assert_eq!(healthy_records, faulted_records);
        assert_eq!(healthy.stats(), faulted.stats());
    }

    #[test]
    fn outage_fails_over_to_the_sibling_pop() {
        use crate::faults::{PopOutage, Window};
        let config = SimConfig {
            pops_per_region: 2,
            ..SimConfig::default_edge()
        };
        let routed = Topology::new(2).route(Region::Europe, UserId::new(1));
        let mut plan = FaultPlan::new(7);
        plan.outages.push(PopOutage {
            pop: routed.raw(),
            window: Window::new(0, 100),
        });
        let sim = Simulator::new(&config).with_faults(plan);
        let rec = sim.serve(request(1, 1, 10, RequestKind::Full));
        assert_ne!(rec.pop, routed, "served at a sibling");
        assert_eq!(rec.degraded, DegradedServe::Failover);
        assert_eq!(rec.status, HttpStatus::OK);
        let stats = sim.stats();
        assert_eq!(stats.degraded_hits, 1);
        assert_eq!(stats.degraded_bytes, rec.bytes_served);
        // After the outage the same user lands on the routed PoP again.
        let later = sim.serve(request(1, 1, 200, RequestKind::Full));
        assert_eq!(later.pop, routed);
        assert_eq!(later.degraded, DegradedServe::None);
    }

    #[test]
    fn dark_region_sheds_at_the_routed_pop() {
        use crate::faults::{PopOutage, Window};
        let routed = Topology::new(1).route(Region::Europe, UserId::new(1));
        let mut plan = FaultPlan::new(5);
        plan.outages.push(PopOutage {
            pop: routed.raw(),
            window: Window::new(0, 100),
        });
        let sim = Simulator::new(&SimConfig::default_edge()).with_faults(plan);
        let rec = sim.serve(request(1, 1, 10, RequestKind::Full));
        assert_eq!(rec.status, HttpStatus::SERVICE_UNAVAILABLE);
        assert_eq!(rec.degraded, DegradedServe::Shed);
        assert_eq!(rec.bytes_served, 0);
        assert_eq!(
            rec.pop, routed,
            "the shed is accounted where the user was sent"
        );
        let pop = sim.pop_stats(routed).expect("valid PoP");
        assert_eq!(pop.shed, 1);
        assert_eq!(pop.availability(), Some(0.0));
    }

    #[test]
    fn brownout_serves_stale_past_ttl_without_refreshing() {
        use crate::faults::{Brownout, Window};
        let config = SimConfig::default_edge().with_ttl(10);
        let mut plan = FaultPlan::new(3);
        plan.brownouts.push(Brownout {
            window: Window::new(10, 40),
            failure_prob: 1.0,
        });
        let sim = Simulator::new(&config).with_faults(plan);
        // Warm at t=0, before the brownout.
        assert_eq!(
            sim.serve(request(1, 1, 0, RequestKind::Full)).cache_status,
            CacheStatus::Miss
        );
        // t=10: brownout just started, but the entry is exactly at its TTL
        // boundary — still fresh, so this is a normal healthy hit.
        let boundary = sim.serve(request(1, 1, 10, RequestKind::Full));
        assert_eq!(boundary.cache_status, CacheStatus::Hit);
        assert_eq!(boundary.degraded, DegradedServe::None);
        assert_eq!(boundary.retries, 0);
        // t=11: expired; every origin attempt fails; the stale copy is
        // served without refreshing the TTL.
        let stale = sim.serve(request(1, 1, 11, RequestKind::Full));
        assert_eq!(stale.cache_status, CacheStatus::Hit);
        assert_eq!(stale.status, HttpStatus::OK);
        assert_eq!(stale.degraded, DegradedServe::Stale);
        assert_eq!(stale.retries, 3, "full retry budget burnt");
        // t=12: still stale — the serve above did not reset freshness.
        let again = sim.serve(request(1, 1, 12, RequestKind::Full));
        assert_eq!(again.degraded, DegradedServe::Stale);
        // t=40: brownout over (end is exclusive); the entry revalidates
        // against the healthy origin as a plain miss.
        let revalidated = sim.serve(request(1, 1, 40, RequestKind::Full));
        assert_eq!(revalidated.cache_status, CacheStatus::Miss);
        assert_eq!(revalidated.degraded, DegradedServe::None);
        assert_eq!(revalidated.retries, 0);
        let stats = sim.stats();
        assert_eq!(stats.stale_hits, 2);
        assert_eq!(stats.retries, 6);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn brownout_sheds_cold_objects_after_retries() {
        use crate::faults::{Brownout, Window};
        let mut plan = FaultPlan::new(4);
        plan.brownouts.push(Brownout {
            window: Window::new(0, 100),
            failure_prob: 1.0,
        });
        let sim = Simulator::new(&SimConfig::default_edge()).with_faults(plan);
        let rec = sim.serve(request(1, 1, 5, RequestKind::Full));
        assert_eq!(rec.status, HttpStatus::SERVICE_UNAVAILABLE);
        assert_eq!(rec.degraded, DegradedServe::Shed);
        assert_eq!(rec.bytes_served, 0);
        assert_eq!(rec.retries, 3);
        // Bodyless kinds never consult the origin, so they are unaffected.
        let beacon = sim.serve(request(2, 1, 6, RequestKind::Beacon));
        assert_eq!(beacon.status, HttpStatus::NO_CONTENT);
        assert_eq!(beacon.degraded, DegradedServe::None);
        let stats = sim.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.retries, 3);
        assert_eq!(stats.availability(), Some(0.5));
    }

    #[test]
    fn capacity_pressure_sheds_over_budget() {
        use crate::faults::{CapacityPressure, Window};
        let routed = Topology::new(1).route(Region::Europe, UserId::new(1));
        let mut plan = FaultPlan::new(6);
        plan.pressure.push(CapacityPressure {
            pop: routed.raw(),
            window: Window::new(0, 100),
            inflight_budget: 2,
        });
        let sim = Simulator::new(&SimConfig::default_edge()).with_faults(plan);
        // Three body requests in the same second: the third is shed.
        let recs: Vec<LogRecord> = (1..=3u64)
            .map(|u| sim.serve(request(u, u, 5, RequestKind::Full)))
            .collect();
        assert_eq!(recs[0].degraded, DegradedServe::None);
        assert_eq!(recs[1].degraded, DegradedServe::None);
        assert_eq!(recs[2].status, HttpStatus::SERVICE_UNAVAILABLE);
        assert_eq!(recs[2].degraded, DegradedServe::Shed);
        // A bodyless request is never budgeted, even over the limit.
        let beacon = sim.serve(request(9, 9, 5, RequestKind::Beacon));
        assert_eq!(beacon.degraded, DegradedServe::None);
        // The bucket resets on the next second.
        let next = sim.serve(request(4, 4, 6, RequestKind::Full));
        assert_eq!(next.degraded, DegradedServe::None);
        assert_eq!(sim.stats().shed, 1);
    }

    #[test]
    fn latency_inflation_counts_served_requests() {
        use crate::faults::{LatencyInflation, Window};
        let mut plan = FaultPlan::new(8);
        plan.latency.push(LatencyInflation {
            window: Window::new(0, 10),
            factor: 2.5,
        });
        let sim = Simulator::new(&SimConfig::default_edge()).with_faults(plan);
        sim.serve(request(1, 1, 5, RequestKind::Full)); // inside the window
        sim.serve(request(1, 1, 50, RequestKind::Full)); // outside
        assert_eq!(sim.stats().inflated_requests, 1);
    }

    #[test]
    fn faulted_replay_matches_serial_serve() {
        let config = SimConfig {
            pops_per_region: 2,
            cache_capacity_bytes: 50_000_000,
            ..SimConfig::default_edge()
        };
        let plan = FaultPlan::sample(0xC0FFEE, 600, 8);
        let serial_sim = Simulator::new(&config).with_faults(plan.clone());
        let serial: Vec<LogRecord> = mixed_trace(600)
            .into_iter()
            .map(|r| serial_sim.serve(r))
            .collect();
        let par_sim = Simulator::new(&config).with_faults(plan.clone());
        let parallel = par_sim.replay(mixed_trace(600));
        assert_eq!(parallel, serial);
        assert_eq!(par_sim.stats(), serial_sim.stats());
        // Counters-only replay agrees counter-for-counter.
        let stats_sim = Simulator::new(&config).with_faults(plan);
        assert_eq!(
            stats_sim.replay_stats(&mixed_trace(600)),
            serial_sim.stats()
        );
    }

    #[test]
    fn parent_tier_lifts_replay_hit_ratio() {
        let make = |n: u64| -> Vec<Request> {
            (0..n)
                .map(|i| {
                    let mut r = request(i % 5, i % 11, i, RequestKind::Full);
                    r.region = Region::ALL[(i % 4) as usize];
                    r
                })
                .collect()
        };
        let flat = Simulator::new(&SimConfig {
            cache_capacity_bytes: 30_000_000,
            ..SimConfig::default_edge()
        });
        let flat_records = flat.replay(make(400));
        let tiered = Simulator::new(
            &SimConfig {
                cache_capacity_bytes: 30_000_000,
                ..SimConfig::default_edge()
            }
            .with_parent(4_000_000_000),
        );
        let tiered_records = tiered.replay(make(400));
        let hits =
            |records: &[LogRecord]| records.iter().filter(|r| r.cache_status.is_hit()).count();
        assert!(
            hits(&tiered_records) >= hits(&flat_records),
            "parent tier cannot lose hits: {} vs {}",
            hits(&tiered_records),
            hits(&flat_records)
        );
    }
}
