//! K-medoids (PAM) clustering and silhouette quality scoring.
//!
//! The paper uses agglomerative hierarchical clustering; PAM is the
//! classic alternative over the same DTW distance matrix (the medoid
//! concept the paper cites — Kaufman & Rousseeuw — originates here), and
//! the silhouette coefficient quantifies how well either method's cut
//! separates the popularity trends.

use crate::dtw::dtw_distance_ea;
use crate::matrix::CondensedMatrix;
use crate::prune::{lb_keogh, lb_kim, Envelope, PruneStats};
use serde::{Deserialize, Serialize};

/// Result of a PAM run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PamResult {
    /// Chosen medoid indices, one per cluster.
    pub medoids: Vec<usize>,
    /// Cluster assignment per point (index into `medoids`).
    pub labels: Vec<usize>,
    /// Final total within-cluster distance.
    pub cost: f64,
    /// Swap iterations performed.
    pub iterations: usize,
}

/// Runs PAM (partitioning around medoids) for `k` clusters.
///
/// Uses the BUILD initialization (greedy cost minimization) followed by
/// SWAP passes until no improving swap exists or `max_iter` is reached.
/// Deterministic: no randomness is involved.
///
/// Returns `None` when `k == 0` or `k > n`.
pub fn pam(matrix: &CondensedMatrix, k: usize, max_iter: usize) -> Option<PamResult> {
    let n = matrix.len();
    if k == 0 || k > n {
        return None;
    }

    // BUILD: first medoid minimizes total distance; subsequent medoids
    // maximize cost reduction.
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    let first = (0..n)
        .min_by(|&a, &b| {
            let ca: f64 = (0..n).map(|j| matrix.get(a, j)).sum();
            let cb: f64 = (0..n).map(|j| matrix.get(b, j)).sum();
            ca.total_cmp(&cb)
        })
        .expect("n >= 1");
    medoids.push(first);
    // Distance to the nearest chosen medoid, per point.
    let mut nearest: Vec<f64> = (0..n).map(|j| matrix.get(first, j)).collect();
    while medoids.len() < k {
        let candidate = (0..n).filter(|i| !medoids.contains(i)).max_by(|&a, &b| {
            let gain = |c: usize| -> f64 {
                (0..n)
                    .map(|j| (nearest[j] - matrix.get(c, j)).max(0.0))
                    .sum()
            };
            gain(a).total_cmp(&gain(b))
        })?;
        medoids.push(candidate);
        for (j, near) in nearest.iter_mut().enumerate() {
            *near = near.min(matrix.get(candidate, j));
        }
    }

    // SWAP: steepest-descent swaps.
    let assign = |medoids: &[usize]| -> (Vec<usize>, f64) {
        let mut labels = vec![0usize; n];
        let mut cost = 0.0;
        for (j, label) in labels.iter_mut().enumerate() {
            let (best, d) = medoids
                .iter()
                .enumerate()
                .map(|(c, &m)| (c, matrix.get(m, j)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("k >= 1");
            *label = best;
            cost += d;
        }
        (labels, cost)
    };

    let (mut labels, mut cost) = assign(&medoids);
    let mut iterations = 0;
    for _ in 0..max_iter {
        let mut best_swap: Option<(usize, usize, f64)> = None;
        for slot in 0..k {
            for candidate in 0..n {
                if medoids.contains(&candidate) {
                    continue;
                }
                let mut trial = medoids.clone();
                trial[slot] = candidate;
                let (_, trial_cost) = assign(&trial);
                if trial_cost + 1e-12 < best_swap.map_or(cost, |(_, _, c)| c) {
                    best_swap = Some((slot, candidate, trial_cost));
                }
            }
        }
        match best_swap {
            Some((slot, candidate, new_cost)) if new_cost + 1e-12 < cost => {
                medoids[slot] = candidate;
                cost = new_cost;
                labels = assign(&medoids).0;
                iterations += 1;
            }
            _ => break,
        }
    }

    Some(PamResult {
        medoids,
        labels,
        cost,
        iterations,
    })
}

/// Assigns every series to its nearest medoid under banded DTW, without a
/// precomputed distance matrix — the k-medoids assignment step at scales
/// where `n·(n-1)/2` pairwise distances would not fit in memory.
///
/// Only the argmin matters, so the full pruning cascade applies per
/// (series, medoid) pair: [`lb_kim`], then [`lb_keogh`], then
/// [`dtw_distance_ea`] with the best distance so far as cutoff. All three
/// tiers are admissible, so labels are identical (ties toward the
/// lower-indexed medoid, as in [`pam`]'s matrix-based assignment) to an
/// exhaustive scan.
///
/// `medoids` indexes into `series`. Returns the per-series label (index
/// into `medoids`) plus the prune tally, or `None` when `medoids` is
/// empty.
///
/// # Panics
///
/// Panics if any medoid index is out of bounds for `series`.
pub fn assign_series(
    series: &[Vec<f64>],
    medoids: &[usize],
    band: Option<usize>,
) -> Option<(Vec<usize>, PruneStats)> {
    if medoids.is_empty() {
        return None;
    }
    let envelopes: Vec<Envelope> = medoids
        .iter()
        .map(|&m| Envelope::new(&series[m], band))
        .collect();
    let mut stats = PruneStats::default();
    let mut labels = Vec::with_capacity(series.len());
    for s in series {
        let mut best = (0usize, f64::INFINITY);
        for (c, &m) in medoids.iter().enumerate() {
            stats.pairs += 1;
            let cutoff = best.1;
            if lb_kim(s, &envelopes[c]) > cutoff {
                stats.lb_kim += 1;
                continue;
            }
            if lb_keogh(s, &envelopes[c]) > cutoff {
                stats.lb_keogh += 1;
                continue;
            }
            let d = dtw_distance_ea(s, &series[m], band, cutoff);
            if d.is_infinite() {
                if cutoff.is_finite() {
                    stats.early_abandoned += 1;
                } else {
                    stats.full += 1;
                }
                continue;
            }
            stats.full += 1;
            if d < cutoff {
                best = (c, d);
            }
        }
        labels.push(best.0);
    }
    Some((labels, stats))
}

/// Mean silhouette coefficient of a clustering over a distance matrix.
///
/// Ranges in `[-1, 1]`; higher is better-separated. Singleton clusters
/// contribute a silhouette of 0 (the standard convention). Returns `None`
/// when fewer than 2 points or fewer than 2 clusters are present.
pub fn silhouette(matrix: &CondensedMatrix, labels: &[usize]) -> Option<f64> {
    let n = matrix.len();
    if n != labels.len() || n < 2 {
        return None;
    }
    let k = labels.iter().max()? + 1;
    let mut cluster_sizes = vec![0usize; k];
    for &l in labels {
        cluster_sizes[l] += 1;
    }
    if cluster_sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return None;
    }
    let mut total = 0.0;
    for i in 0..n {
        if cluster_sizes[labels[i]] <= 1 {
            continue; // silhouette 0
        }
        // Mean distance to own cluster (a) and nearest other cluster (b).
        let mut sums = vec![0.0f64; k];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += matrix.get(i, j);
            }
        }
        let a = sums[labels[i]] / (cluster_sizes[labels[i]] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != labels[i] && cluster_sizes[c] > 0)
            .map(|c| sums[c] / cluster_sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    Some(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{pairwise_matrix, Metric};

    fn blobs() -> (Vec<Vec<f64>>, CondensedMatrix) {
        let mut series = Vec::new();
        for base in [0.0, 100.0, 200.0] {
            for i in 0..4 {
                series.push(vec![base + i as f64 * 0.5; 6]);
            }
        }
        let matrix = pairwise_matrix(&series, Metric::Euclidean).expect("n >= 2");
        (series, matrix)
    }

    #[test]
    fn pam_recovers_blobs() {
        let (_, matrix) = blobs();
        let result = pam(&matrix, 3, 50).unwrap();
        assert_eq!(result.medoids.len(), 3);
        assert_eq!(result.labels.len(), 12);
        // Members of each block share a label distinct from other blocks.
        for block in 0..3 {
            let label = result.labels[block * 4];
            for i in 0..4 {
                assert_eq!(result.labels[block * 4 + i], label);
            }
        }
        let distinct: std::collections::HashSet<_> = result.labels.iter().collect();
        assert_eq!(distinct.len(), 3);
        // Medoids are members of their own clusters.
        for (c, &m) in result.medoids.iter().enumerate() {
            assert_eq!(result.labels[m], c);
        }
    }

    #[test]
    fn pam_edge_cases() {
        let (_, matrix) = blobs();
        assert!(pam(&matrix, 0, 10).is_none());
        assert!(pam(&matrix, 13, 10).is_none());
        // k == n: every point its own medoid, cost 0.
        let all = pam(&matrix, 12, 10).unwrap();
        assert!(all.cost.abs() < 1e-12);
        // k == 1: single cluster.
        let one = pam(&matrix, 1, 10).unwrap();
        assert!(one.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn pam_deterministic() {
        let (_, matrix) = blobs();
        let a = pam(&matrix, 3, 50).unwrap();
        let b = pam(&matrix, 3, 50).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn assign_series_matches_matrix_assignment() {
        let band = Some(4);
        let series: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                (0..40)
                    .map(|t| (t as f64 * 0.35 + i as f64 * 1.1).sin() * (1.0 + (i % 4) as f64))
                    .collect()
            })
            .collect();
        let matrix = pairwise_matrix(&series, Metric::Dtw { band }).expect("n >= 2");
        let medoids = [2usize, 9, 17];
        let (labels, stats) = assign_series(&series, &medoids, band).expect("medoids non-empty");
        assert_eq!(labels.len(), series.len());
        assert_eq!(stats.pairs, (series.len() * medoids.len()) as u64);
        // Matrix-based reference: nearest medoid, lowest index on ties.
        for (j, &label) in labels.iter().enumerate() {
            let (want, _) = medoids
                .iter()
                .enumerate()
                .map(|(c, &m)| (c, matrix.get(m, j)))
                .fold((0usize, f64::INFINITY), |acc, (c, d)| {
                    if d < acc.1 {
                        (c, d)
                    } else {
                        acc
                    }
                });
            assert_eq!(label, want, "series {j}");
        }
        assert!(stats.pruned() > 0, "cascade should prune: {stats}");
        assert!(assign_series(&series, &[], band).is_none());
    }

    #[test]
    fn silhouette_prefers_true_k() {
        let (_, matrix) = blobs();
        let good = pam(&matrix, 3, 50).unwrap();
        let s3 = silhouette(&matrix, &good.labels).unwrap();
        let under = pam(&matrix, 2, 50).unwrap();
        let s2 = silhouette(&matrix, &under.labels).unwrap();
        assert!(s3 > s2, "true k should score higher: {s3:.3} vs {s2:.3}");
        assert!(s3 > 0.9, "well-separated blobs score near 1: {s3:.3}");
    }

    #[test]
    fn silhouette_edge_cases() {
        let (_, matrix) = blobs();
        // All one cluster: undefined.
        assert_eq!(silhouette(&matrix, &[0; 12]), None);
        // Mismatched lengths.
        assert_eq!(silhouette(&matrix, &[0, 1]), None);
        // Tiny matrix.
        let m1 = CondensedMatrix::zeros(1);
        assert_eq!(silhouette(&m1, &[0]), None);
    }

    #[test]
    fn silhouette_in_range() {
        let (_, matrix) = blobs();
        // Deliberately bad labels still land in [-1, 1].
        let bad: Vec<usize> = (0..12).map(|i| i % 2).collect();
        let s = silhouette(&matrix, &bad).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }
}
