//! Distance metrics between series, and pairwise matrix construction.

use crate::dtw::dtw_distance;
use crate::matrix::CondensedMatrix;

/// A distance metric between two time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Dynamic time warping with an optional Sakoe–Chiba band (the paper's
    /// choice).
    Dtw {
        /// Band half-width; `None` is unconstrained.
        band: Option<usize>,
    },
    /// Lockstep Euclidean distance. Series shorter than the other are
    /// implicitly zero-padded — used as the ablation baseline (A6).
    Euclidean,
}

impl Metric {
    /// Distance between two series under this metric.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Metric::Dtw { band } => dtw_distance(a, b, band),
            Metric::Euclidean => euclidean(a, b),
        }
    }
}

/// Lockstep Euclidean distance; the shorter series is zero-padded.
///
/// # Example
///
/// ```
/// use oat_timeseries::distance::euclidean;
/// assert_eq!(euclidean(&[0.0, 3.0], &[4.0, 3.0]), 4.0);
/// assert_eq!(euclidean(&[3.0], &[3.0, 4.0]), 4.0); // padding
/// ```
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    // Common prefix in lockstep (bounds checks elided by the slice zip),
    // then the longer series' zero-padded tail contributes its own squares.
    // Term order matches the naive 0..max loop, so results are unchanged.
    let common = a.len().min(b.len());
    let mut sum = 0.0;
    for (x, y) in a[..common].iter().zip(&b[..common]) {
        sum += (x - y).powi(2);
    }
    let tail = if a.len() > common {
        &a[common..]
    } else {
        &b[common..]
    };
    for x in tail {
        sum += x.powi(2);
    }
    sum.sqrt()
}

/// Computes the condensed pairwise distance matrix for a set of series,
/// using every available core (see [`pairwise_matrix_with_threads`]).
///
/// Returns `None` when fewer than two series are supplied.
pub fn pairwise_matrix(series: &[Vec<f64>], metric: Metric) -> Option<CondensedMatrix> {
    pairwise_matrix_with_threads(series, metric, 0)
}

/// Computes the condensed pairwise distance matrix with an explicit worker
/// count (`0` = available parallelism).
///
/// The condensed upper triangle is chunked into contiguous ranges filled by
/// scoped threads via [`CondensedMatrix::par_fill`] — no locks on the hot
/// path. Every pair's distance is computed independently of fill order, so
/// the result is **bit-identical at every thread count**; `threads` is
/// purely a throughput knob.
///
/// Returns `None` when fewer than two series are supplied.
///
/// # Example
///
/// ```
/// use oat_timeseries::distance::{pairwise_matrix_with_threads, Metric};
///
/// let series = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5]];
/// let serial = pairwise_matrix_with_threads(&series, Metric::Euclidean, 1).unwrap();
/// let parallel = pairwise_matrix_with_threads(&series, Metric::Euclidean, 4).unwrap();
/// assert_eq!(serial, parallel);
/// ```
pub fn pairwise_matrix_with_threads(
    series: &[Vec<f64>],
    metric: Metric,
    threads: usize,
) -> Option<CondensedMatrix> {
    let n = series.len();
    if n < 2 {
        return None;
    }
    let mut m = CondensedMatrix::zeros(n);
    m.par_fill(threads, |i, j| metric.distance(&series[i], &series[j]));
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basic() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[], &[]), 0.0);
        assert_eq!(euclidean(&[1.0], &[]), 1.0);
        assert_eq!(euclidean(&[], &[2.0]), 2.0);
        // Padding applies to whichever side is shorter.
        assert_eq!(euclidean(&[3.0, 0.0, 4.0], &[3.0]), 4.0);
        assert_eq!(euclidean(&[3.0], &[3.0, 0.0, 4.0]), 4.0);
    }

    #[test]
    fn metric_dispatch() {
        let a = [0.0, 1.0, 2.0];
        let b = [0.0, 1.0, 2.0];
        assert_eq!(Metric::Euclidean.distance(&a, &b), 0.0);
        assert_eq!(Metric::Dtw { band: None }.distance(&a, &b), 0.0);
    }

    #[test]
    fn pairwise_matrix_symmetric() {
        let series = vec![
            vec![0.0, 1.0, 2.0],
            vec![2.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0],
        ];
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        assert!(m.get(0, 1) > 0.0);
    }

    #[test]
    fn pairwise_requires_two() {
        assert!(pairwise_matrix(&[], Metric::Euclidean).is_none());
        assert!(pairwise_matrix(&[vec![1.0]], Metric::Euclidean).is_none());
    }

    #[test]
    fn dtw_leq_euclidean_equal_lengths() {
        // DTW can only relax the lockstep alignment, so it never exceeds
        // Euclidean for equal-length series.
        let a: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3 + 1.0).sin()).collect();
        let d_dtw = Metric::Dtw { band: None }.distance(&a, &b);
        let d_euc = Metric::Euclidean.distance(&a, &b);
        assert!(d_dtw <= d_euc + 1e-12);
    }
}
