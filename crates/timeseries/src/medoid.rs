//! Cluster medoids and point-wise envelopes.
//!
//! The paper visualizes each popularity cluster by its *medoid* (the most
//! centrally located member, Kaufman & Rousseeuw) with a shaded point-wise
//! standard-deviation envelope (Figures 9–10).

use crate::dtw::dtw_distance_ea;
use crate::matrix::CondensedMatrix;
use crate::prune::{lb_kim, Envelope};
use serde::{Deserialize, Serialize};

/// Index (within `members`) of the cluster medoid: the member minimizing the
/// sum of distances to all other members.
///
/// Returns `None` when `members` is empty. Ties are broken toward the lower
/// index for determinism.
///
/// # Panics
///
/// Panics if any member index is out of bounds for `matrix`.
pub fn medoid_index(matrix: &CondensedMatrix, members: &[usize]) -> Option<usize> {
    if members.is_empty() {
        return None;
    }
    let mut best: Option<(usize, f64)> = None;
    for (pos, &i) in members.iter().enumerate() {
        let total: f64 = members.iter().map(|&j| matrix.get(i, j)).sum();
        match best {
            Some((_, bd)) if total >= bd => {}
            _ => best = Some((pos, total)),
        }
    }
    best.map(|(pos, _)| pos)
}

/// [`medoid_index`] computed directly from series under banded DTW, for
/// when no precomputed [`CondensedMatrix`] exists (full-catalog scale,
/// where `n·(n-1)/2` distances would not fit).
///
/// Each candidate accumulates its distance sum and is abandoned — via an
/// [`lb_kim`] gate and then [`dtw_distance_ea`] with the remaining budget
/// as cutoff — as soon as the partial sum provably exceeds the best total
/// seen. Both prunes are admissible, so the winner (ties toward the lower
/// position, as in [`medoid_index`]) is identical to the exhaustive scan.
///
/// Returns `None` when `members` is empty.
///
/// # Panics
///
/// Panics if any member index is out of bounds for `series`.
pub fn medoid_series(series: &[Vec<f64>], members: &[usize], band: Option<usize>) -> Option<usize> {
    if members.is_empty() {
        return None;
    }
    let envelopes: Vec<Envelope> = members
        .iter()
        .map(|&m| Envelope::new(&series[m], band))
        .collect();
    let mut best: Option<(usize, f64)> = None;
    for (pos, &i) in members.iter().enumerate() {
        let budget = best.map_or(f64::INFINITY, |(_, total)| total);
        let mut total = 0.0;
        let mut abandoned = false;
        for (other_pos, &j) in members.iter().enumerate() {
            if i == j {
                continue; // self-distance is zero
            }
            let remaining = budget - total;
            // A lower bound beyond the remaining budget already rules the
            // candidate out; otherwise the exact distance is needed (it is
            // added to the running sum), computed with early abandoning
            // against that same budget.
            if lb_kim(&series[i], &envelopes[other_pos]) > remaining {
                abandoned = true;
                break;
            }
            let d = dtw_distance_ea(&series[i], &series[j], band, remaining);
            if d > remaining {
                abandoned = true;
                break;
            }
            total += d;
        }
        if !abandoned {
            match best {
                Some((_, best_total)) if total >= best_total => {}
                _ => best = Some((pos, total)),
            }
        }
    }
    best.map(|(pos, _)| pos)
}

/// Point-wise summary of a cluster of equal-length series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterEnvelope {
    /// The medoid series (cloned from the member identified by
    /// [`medoid_index`]).
    pub medoid: Vec<f64>,
    /// Point-wise mean across members.
    pub mean: Vec<f64>,
    /// Point-wise population standard deviation across members.
    pub std_dev: Vec<f64>,
    /// Number of member series.
    pub size: usize,
}

/// Computes the medoid + point-wise mean/std envelope for the given cluster.
///
/// `members` indexes into `series`; all member series must share one length.
/// Returns `None` when `members` is empty or lengths disagree.
pub fn cluster_envelope(
    series: &[Vec<f64>],
    matrix: &CondensedMatrix,
    members: &[usize],
) -> Option<ClusterEnvelope> {
    if members.is_empty() {
        return None;
    }
    let len = series.get(members[0])?.len();
    if members
        .iter()
        .any(|&m| series.get(m).map(Vec::len) != Some(len))
    {
        return None;
    }
    let medoid_pos = medoid_index(matrix, members)?;
    let medoid = series[members[medoid_pos]].clone();
    let n = members.len() as f64;
    let mut mean = vec![0.0; len];
    for &m in members {
        for (acc, &x) in mean.iter_mut().zip(&series[m]) {
            *acc += x;
        }
    }
    for v in &mut mean {
        *v /= n;
    }
    let mut var = vec![0.0; len];
    for &m in members {
        for ((acc, &x), &mu) in var.iter_mut().zip(&series[m]).zip(&mean) {
            *acc += (x - mu).powi(2);
        }
    }
    let std_dev: Vec<f64> = var.into_iter().map(|v| (v / n).sqrt()).collect();
    Some(ClusterEnvelope {
        medoid,
        mean,
        std_dev,
        size: members.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{pairwise_matrix, Metric};

    #[test]
    fn empty_members() {
        let m = CondensedMatrix::zeros(3);
        assert_eq!(medoid_index(&m, &[]), None);
        assert!(cluster_envelope(&[], &m, &[]).is_none());
    }

    #[test]
    fn singleton_cluster() {
        let series = vec![vec![1.0, 2.0]];
        let m = CondensedMatrix::zeros(1);
        let env = cluster_envelope(&series, &m, &[0]).unwrap();
        assert_eq!(env.medoid, vec![1.0, 2.0]);
        assert_eq!(env.mean, vec![1.0, 2.0]);
        assert_eq!(env.std_dev, vec![0.0, 0.0]);
        assert_eq!(env.size, 1);
    }

    #[test]
    fn medoid_is_central_member() {
        // Points on a line: 0, 1, 2, 10. Medoid of {0,1,2,3} is index 1 or 2;
        // sum-of-distance for value 1: 1+0+1+9=11; for 2: 2+1+0+8=11 → tie,
        // lower position wins.
        let series = vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]];
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        let pos = medoid_index(&m, &[0, 1, 2, 3]).unwrap();
        assert_eq!(pos, 1);
    }

    #[test]
    fn medoid_of_subcluster() {
        let series = vec![vec![0.0], vec![5.0], vec![6.0], vec![7.0]];
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        // Within members {1,2,3} the medoid is the middle value 6.0 (pos 1).
        assert_eq!(medoid_index(&m, &[1, 2, 3]), Some(1));
    }

    #[test]
    fn medoid_series_matches_matrix_medoid() {
        let series: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                (0..36)
                    .map(|t| (t as f64 * 0.4 + i as f64 * 0.9).sin() * (1.0 + (i % 3) as f64))
                    .collect()
            })
            .collect();
        for band in [None, Some(0), Some(4)] {
            let m = pairwise_matrix(&series, Metric::Dtw { band }).unwrap();
            let members: Vec<usize> = (0..12).collect();
            assert_eq!(
                medoid_series(&series, &members, band),
                medoid_index(&m, &members),
                "band {band:?}"
            );
            // Sub-cluster with non-contiguous members.
            let sub = [1usize, 4, 7, 10, 11];
            assert_eq!(
                medoid_series(&series, &sub, band),
                medoid_index(&m, &sub),
                "band {band:?} subset"
            );
        }
        assert_eq!(medoid_series(&series, &[], Some(2)), None);
        assert_eq!(medoid_series(&series, &[3], Some(2)), Some(0));
    }

    #[test]
    fn envelope_mean_and_std() {
        let series = vec![vec![0.0, 2.0], vec![2.0, 2.0], vec![4.0, 2.0]];
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        let env = cluster_envelope(&series, &m, &[0, 1, 2]).unwrap();
        assert_eq!(env.mean, vec![2.0, 2.0]);
        // Population std of {0,2,4} = sqrt(8/3).
        assert!((env.std_dev[0] - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(env.std_dev[1], 0.0);
        // Medoid is the middle series.
        assert_eq!(env.medoid, vec![2.0, 2.0]);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let series = vec![vec![1.0, 2.0], vec![1.0]];
        let m = CondensedMatrix::zeros(2);
        assert!(cluster_envelope(&series, &m, &[0, 1]).is_none());
    }

    #[test]
    fn out_of_range_member_rejected() {
        let series = vec![vec![1.0]];
        let m = CondensedMatrix::zeros(1);
        assert!(cluster_envelope(&series, &m, &[5]).is_none());
    }
}
