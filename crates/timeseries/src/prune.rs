//! UCR-suite-style lower-bound pruning for DTW argmin searches.
//!
//! Exact DTW is `O(N·w)` per pair; a full pairwise matrix needs every exact
//! value, so lower bounds cannot skip matrix entries (see
//! [`distance::pairwise_matrix`](crate::distance::pairwise_matrix) — that
//! path is accelerated by parallelism instead). Where only an *argmin*
//! matters — nearest-neighbour queries, medoid refinement, k-medoids
//! assignment — an admissible lower bound that already exceeds the best
//! distance seen so far disposes of a candidate in `O(1)`/`O(N)` instead,
//! and [`dtw_distance_ea`] abandons the survivors mid-computation.
//!
//! The cascade, cheapest first:
//!
//! 1. [`lb_kim`] — envelope deviation at the two endpoints, `O(1)`.
//! 2. [`lb_keogh`] — envelope deviation at every point, `O(N)`.
//! 3. [`dtw_distance_ea`] — exact DTW with row-wise early abandoning.
//!
//! Both bounds are *admissible* (never exceed the true DTW distance) and
//! chained (`lb_kim <= lb_keogh <= dtw`), so pruning never changes an
//! argmin — only how fast it is found.

use crate::dtw::dtw_distance_ea;
use serde::{Deserialize, Serialize};

/// Per-series Sakoe–Chiba envelope: point-wise running min/max of the
/// series over a `±band` window. Precomputed once per series, reused for
/// every lower-bound comparison against it.
///
/// # Example
///
/// ```
/// use oat_timeseries::prune::Envelope;
///
/// let env = Envelope::new(&[0.0, 2.0, 1.0, 5.0], Some(1));
/// assert_eq!(env.upper, vec![2.0, 2.0, 5.0, 5.0]);
/// assert_eq!(env.lower, vec![0.0, 0.0, 1.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Point-wise window maximum.
    pub upper: Vec<f64>,
    /// Point-wise window minimum.
    pub lower: Vec<f64>,
}

impl Envelope {
    /// Builds the envelope of `series` for a Sakoe–Chiba band of half-width
    /// `band` (`None` = unconstrained, i.e. the global min/max everywhere).
    pub fn new(series: &[f64], band: Option<usize>) -> Self {
        let n = series.len();
        let w = band.unwrap_or(n);
        let mut upper = Vec::with_capacity(n);
        let mut lower = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(w);
            let hi = (i + w).min(n - 1);
            let window = &series[lo..=hi];
            upper.push(window.iter().copied().fold(f64::NEG_INFINITY, f64::max));
            lower.push(window.iter().copied().fold(f64::INFINITY, f64::min));
        }
        Self { upper, lower }
    }

    /// Number of points covered.
    pub fn len(&self) -> usize {
        self.upper.len()
    }

    /// Whether the envelope covers zero points.
    pub fn is_empty(&self) -> bool {
        self.upper.is_empty()
    }

    /// Squared deviation of `x` from the envelope at index `i` (zero when
    /// `x` lies inside the band).
    fn deviation_sq(&self, i: usize, x: f64) -> f64 {
        if x > self.upper[i] {
            (x - self.upper[i]).powi(2)
        } else if x < self.lower[i] {
            (self.lower[i] - x).powi(2)
        } else {
            0.0
        }
    }
}

/// LB_Kim: envelope deviation at the first and last points only, `O(1)`.
///
/// Every warping path matches the two endpoint cells, so their deviation
/// from the candidate's envelope lower-bounds the DTW distance. This is
/// the endpoint restriction of [`lb_keogh`], which makes the chain
/// `lb_kim <= lb_keogh <= dtw` hold by construction.
///
/// Only defined for equal-length series (the paper's hourly grids always
/// are); returns `0.0` — trivially admissible — otherwise.
pub fn lb_kim(query: &[f64], candidate_env: &Envelope) -> f64 {
    let n = query.len();
    if n == 0 || candidate_env.len() != n {
        return 0.0;
    }
    let mut sum = candidate_env.deviation_sq(0, query[0]);
    if n > 1 {
        sum += candidate_env.deviation_sq(n - 1, query[n - 1]);
    }
    sum.sqrt()
}

/// LB_Keogh: envelope deviation summed over every point, `O(N)`.
///
/// For equal-length series under a Sakoe–Chiba band of half-width `w`,
/// every warping path visits at least one in-band cell `(i, j)` per row
/// with `|i - j| <= w`, and `(a_i - b_j)^2` is at least `a_i`'s squared
/// deviation from the `±w` envelope of `b`. Summing one such term per row
/// therefore lower-bounds the DTW distance. Returns `0.0` for unequal
/// lengths (trivially admissible).
///
/// # Example
///
/// ```
/// use oat_timeseries::dtw::dtw_distance;
/// use oat_timeseries::prune::{lb_keogh, Envelope};
///
/// let a: Vec<f64> = (0..48).map(|i| (i as f64 * 0.3).sin()).collect();
/// let b: Vec<f64> = (0..48).map(|i| (i as f64 * 0.3).cos()).collect();
/// let env = Envelope::new(&b, Some(4));
/// assert!(lb_keogh(&a, &env) <= dtw_distance(&a, &b, Some(4)));
/// ```
pub fn lb_keogh(query: &[f64], candidate_env: &Envelope) -> f64 {
    let n = query.len();
    if n == 0 || candidate_env.len() != n {
        return 0.0;
    }
    let mut sum = 0.0;
    for (i, &x) in query.iter().enumerate() {
        sum += candidate_env.deviation_sq(i, x);
    }
    sum.sqrt()
}

/// Tally of how a pruned search disposed of candidate pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneStats {
    /// Candidate pairs considered.
    pub pairs: u64,
    /// Pruned by [`lb_kim`] alone (`O(1)` per pair).
    pub lb_kim: u64,
    /// Pruned by [`lb_keogh`] (`O(N)` per pair).
    pub lb_keogh: u64,
    /// Abandoned mid-DTW by [`dtw_distance_ea`].
    pub early_abandoned: u64,
    /// Pairs that needed the complete DTW computation.
    pub full: u64,
}

impl PruneStats {
    /// Pairs short-circuited before a complete DTW (all three tiers).
    pub fn pruned(&self) -> u64 {
        self.lb_kim + self.lb_keogh + self.early_abandoned
    }

    /// Fraction of pairs short-circuited (`0.0` for an empty tally).
    pub fn prune_rate(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.pruned() as f64 / self.pairs as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &PruneStats) {
        self.pairs += other.pairs;
        self.lb_kim += other.lb_kim;
        self.lb_keogh += other.lb_keogh;
        self.early_abandoned += other.early_abandoned;
        self.full += other.full;
    }
}

impl std::fmt::Display for PruneStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} pairs: {} lb_kim, {} lb_keogh, {} abandoned, {} full ({:.1}% pruned)",
            self.pairs,
            self.lb_kim,
            self.lb_keogh,
            self.early_abandoned,
            self.full,
            100.0 * self.prune_rate()
        )
    }
}

/// Nearest neighbour of `query` among `candidates` under banded DTW, using
/// the full pruning cascade. `envelopes[i]` must be the [`Envelope`] of
/// `candidates[i]` built with the same `band`. `skip` excludes one index
/// (typically the query itself for self-joins).
///
/// Returns `(index, distance)` of the closest candidate — identical, ties
/// broken toward the lower index, to an exhaustive scan — or `None` when
/// no candidate yields a finite distance. `stats` is updated with how each
/// pair was disposed of.
pub fn nearest_neighbor(
    query: &[f64],
    candidates: &[Vec<f64>],
    envelopes: &[Envelope],
    band: Option<usize>,
    skip: Option<usize>,
    stats: &mut PruneStats,
) -> Option<(usize, f64)> {
    assert_eq!(
        candidates.len(),
        envelopes.len(),
        "one envelope per candidate"
    );
    let mut best: Option<(usize, f64)> = None;
    for (i, candidate) in candidates.iter().enumerate() {
        if Some(i) == skip {
            continue;
        }
        stats.pairs += 1;
        let cutoff = best.map_or(f64::INFINITY, |(_, d)| d);
        if lb_kim(query, &envelopes[i]) > cutoff {
            stats.lb_kim += 1;
            continue;
        }
        if lb_keogh(query, &envelopes[i]) > cutoff {
            stats.lb_keogh += 1;
            continue;
        }
        let d = dtw_distance_ea(query, candidate, band, cutoff);
        if d.is_infinite() {
            // Either abandoned against a finite cutoff or genuinely
            // infinite (empty candidate); both leave `best` untouched.
            if cutoff.is_finite() {
                stats.early_abandoned += 1;
            } else {
                stats.full += 1;
            }
            continue;
        }
        stats.full += 1;
        if d < cutoff {
            best = Some((i, d));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw_distance;

    fn wave(len: usize, phase: f64, scale: f64) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64 * 0.31 + phase).sin() * scale)
            .collect()
    }

    #[test]
    fn envelope_contains_series() {
        let s = wave(40, 0.3, 2.0);
        for band in [None, Some(0), Some(3), Some(100)] {
            let env = Envelope::new(&s, band);
            assert_eq!(env.len(), s.len());
            for (i, &x) in s.iter().enumerate() {
                assert!(env.lower[i] <= x && x <= env.upper[i]);
            }
        }
    }

    #[test]
    fn envelope_band_zero_is_series() {
        let s = wave(10, 0.0, 1.0);
        let env = Envelope::new(&s, Some(0));
        assert_eq!(env.upper, s);
        assert_eq!(env.lower, s);
    }

    #[test]
    fn envelope_empty() {
        let env = Envelope::new(&[], Some(3));
        assert!(env.is_empty());
        assert_eq!(env.len(), 0);
    }

    #[test]
    fn lower_bound_chain_admissible() {
        let a = wave(50, 0.0, 1.0);
        for (phase, scale) in [(0.4, 1.0), (1.9, 3.0), (0.0, 1.0)] {
            let b = wave(50, phase, scale);
            for band in [None, Some(0), Some(4), Some(24)] {
                let env = Envelope::new(&b, band);
                let kim = lb_kim(&a, &env);
                let keogh = lb_keogh(&a, &env);
                let exact = dtw_distance(&a, &b, band);
                assert!(kim <= keogh + 1e-12, "kim {kim} keogh {keogh}");
                assert!(keogh <= exact + 1e-12, "keogh {keogh} dtw {exact}");
            }
        }
    }

    #[test]
    fn bounds_zero_for_unequal_lengths() {
        let env = Envelope::new(&wave(30, 0.0, 1.0), Some(4));
        let q = wave(20, 0.5, 1.0);
        assert_eq!(lb_kim(&q, &env), 0.0);
        assert_eq!(lb_keogh(&q, &env), 0.0);
    }

    #[test]
    fn nearest_neighbor_matches_exhaustive_scan() {
        let band = Some(6);
        let candidates: Vec<Vec<f64>> = (0..30)
            .map(|i| wave(48, i as f64 * 0.7, 1.0 + (i % 5) as f64 * 0.3))
            .collect();
        let envelopes: Vec<Envelope> = candidates.iter().map(|c| Envelope::new(c, band)).collect();
        let mut stats = PruneStats::default();
        for (q, query) in candidates.iter().enumerate() {
            let (idx, dist) =
                nearest_neighbor(query, &candidates, &envelopes, band, Some(q), &mut stats)
                    .expect("non-empty candidate set");
            // Exhaustive reference (first-wins on ties, like the cascade).
            let (mut want_idx, mut want_dist) = (usize::MAX, f64::INFINITY);
            for (i, c) in candidates.iter().enumerate() {
                if i == q {
                    continue;
                }
                let d = dtw_distance(query, c, band);
                if d < want_dist {
                    want_idx = i;
                    want_dist = d;
                }
            }
            assert_eq!(idx, want_idx, "query {q}");
            assert_eq!(dist, want_dist, "query {q}: pruning must be exact");
        }
        assert_eq!(stats.pairs, 30 * 29);
        assert_eq!(
            stats.pairs,
            stats.lb_kim + stats.lb_keogh + stats.early_abandoned + stats.full
        );
        assert!(
            stats.pruned() > 0,
            "cascade should prune something: {stats}"
        );
    }

    #[test]
    fn prune_stats_merge_and_rate() {
        let mut a = PruneStats {
            pairs: 10,
            lb_kim: 2,
            lb_keogh: 3,
            early_abandoned: 1,
            full: 4,
        };
        let b = PruneStats {
            pairs: 10,
            lb_kim: 0,
            lb_keogh: 0,
            early_abandoned: 0,
            full: 10,
        };
        a.merge(&b);
        assert_eq!(a.pairs, 20);
        assert_eq!(a.pruned(), 6);
        assert!((a.prune_rate() - 0.3).abs() < 1e-12);
        assert_eq!(PruneStats::default().prune_rate(), 0.0);
        let text = format!("{a}");
        assert!(text.contains("30.0% pruned"), "{text}");
    }
}
