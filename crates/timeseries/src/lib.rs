//! Time-series analytics for request-count popularity curves.
//!
//! Implements the paper's content-popularity clustering methodology
//! (§IV-B, Figures 8–10):
//!
//! 1. Per-object hourly request-count series are [normalized](normalize).
//! 2. Pairwise similarity is computed with [Dynamic Time Warping](dtw)
//!    (optionally banded for speed). The condensed distance matrix is
//!    filled in parallel — chunked over scoped threads, bit-identical at
//!    every thread count — and argmin-style queries (nearest neighbour,
//!    medoid refinement, k-medoids assignment) are accelerated with
//!    admissible [lower-bound pruning](prune) and early-abandoning DTW.
//! 3. [Agglomerative hierarchical clustering](hierarchical) over the
//!    [condensed distance matrix](matrix) yields a dendrogram.
//! 4. Each cluster is summarized by its [medoid](medoid) and a point-wise
//!    standard-deviation envelope. [`kmedoids`] provides PAM as an
//!    alternative partitioner plus silhouette quality scoring.
//! 5. Medoids are [labelled](trend) as diurnal / long-lived / short-lived /
//!    flash-crowd / outlier temporal trends.
//!
//! # Example
//!
//! ```
//! use oat_timeseries::{dtw::dtw_distance, normalize::sum_normalize};
//!
//! let a = sum_normalize(&[0.0, 1.0, 2.0, 1.0]).unwrap();
//! let b = sum_normalize(&[0.0, 0.0, 1.0, 2.0]).unwrap();
//! let d = dtw_distance(&a, &b, None);
//! assert!(d >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod distance;
pub mod dtw;
pub mod hierarchical;
pub mod kmedoids;
pub mod matrix;
pub mod medoid;
pub mod normalize;
pub mod prune;
pub mod trend;

pub use distance::{pairwise_matrix_with_threads, Metric};
pub use dtw::{dtw_distance, dtw_distance_ea, dtw_path, DtwOptions};
pub use hierarchical::{Dendrogram, Linkage, Merge};
pub use kmedoids::{assign_series, pam, silhouette, PamResult};
pub use matrix::CondensedMatrix;
pub use medoid::{cluster_envelope, medoid_index, medoid_series, ClusterEnvelope};
pub use prune::{lb_keogh, lb_kim, nearest_neighbor, Envelope, PruneStats};
pub use trend::{classify_trend, TrendClass, TrendFeatures};
