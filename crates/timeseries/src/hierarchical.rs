//! Agglomerative hierarchical clustering over a condensed distance matrix.
//!
//! Uses the nearest-neighbour-chain algorithm (O(n²) time after the distance
//! matrix is built) with Lance–Williams updates, supporting the linkages the
//! paper's dendrogram analysis needs. Merges are canonicalized (sorted by
//! merge distance, SciPy-style node ids) so dendrograms can be cut by
//! distance threshold or target cluster count.

use crate::matrix::CondensedMatrix;
use serde::{Deserialize, Serialize};

/// Linkage criterion for agglomerative clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance between clusters.
    Single,
    /// Maximum pairwise distance between clusters.
    Complete,
    /// Unweighted average pairwise distance (UPGMA) — the default for the
    /// paper's popularity-trend dendrograms.
    Average,
    /// Ward's minimum-variance criterion (assumes Euclidean-like distances).
    Ward,
}

/// One merge step in a dendrogram.
///
/// Node ids follow the SciPy convention: ids `0..n` are leaves; the k-th
/// merge (0-based, in ascending distance order) creates node `n + k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged node id.
    pub left: usize,
    /// Second merged node id.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Number of leaves in the merged cluster.
    pub size: usize,
}

/// A full agglomerative clustering result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
    /// One representative leaf per merge node, for union-find replay.
    reps: Vec<(usize, usize)>,
}

impl Dendrogram {
    /// Number of leaves clustered.
    pub fn n_leaves(&self) -> usize {
        self.n
    }

    /// The merge steps in ascending distance order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cluster assignments after cutting the tree at `threshold`:
    /// every merge with distance `<= threshold` is applied.
    ///
    /// Returns one label per leaf, with labels densely numbered from zero in
    /// order of first appearance.
    pub fn cut_at_distance(&self, threshold: f64) -> Vec<usize> {
        let applied = self
            .merges
            .iter()
            .take_while(|m| m.distance <= threshold)
            .count();
        self.cut_after(applied)
    }

    /// Cluster assignments for exactly `k` clusters (clamped to `[1, n]`).
    ///
    /// Returns an empty vector when the dendrogram has no leaves.
    pub fn cut_k(&self, k: usize) -> Vec<usize> {
        if self.n == 0 {
            return Vec::new();
        }
        let k = k.clamp(1, self.n);
        self.cut_after(self.n - k)
    }

    /// Applies the first `count` merges and returns dense leaf labels.
    fn cut_after(&self, count: usize) -> Vec<usize> {
        let mut uf = UnionFind::new(self.n);
        for (leaf_a, leaf_b) in self.reps.iter().take(count) {
            uf.union(*leaf_a, *leaf_b);
        }
        let mut label_of_root = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(self.n);
        for leaf in 0..self.n {
            let root = uf.find(leaf);
            let next = label_of_root.len();
            let label = *label_of_root.entry(root).or_insert(next);
            labels.push(label);
        }
        labels
    }

    /// Groups leaves by cluster for a `k`-cluster cut, largest cluster first.
    pub fn clusters_k(&self, k: usize) -> Vec<Vec<usize>> {
        let labels = self.cut_k(k);
        let Some(&max) = labels.iter().max() else {
            return Vec::new();
        };
        let mut groups = vec![Vec::new(); max + 1];
        for (leaf, &label) in labels.iter().enumerate() {
            groups[label].push(leaf);
        }
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
        groups
    }

    /// The cophenetic (merge) distance separating the two largest clusters
    /// at the final merge — a quick measure of how separated the top-level
    /// structure is. `None` when fewer than two leaves.
    pub fn root_distance(&self) -> Option<f64> {
        self.merges.last().map(|m| m.distance)
    }
}

/// Runs agglomerative clustering with the given linkage.
///
/// Handles n = 0 and n = 1 gracefully (empty merge list).
pub fn cluster(matrix: &CondensedMatrix, linkage: Linkage) -> Dendrogram {
    let n = matrix.len();
    if n < 2 {
        return Dendrogram {
            n,
            merges: Vec::new(),
            reps: Vec::new(),
        };
    }

    // Full square working copy for O(1) updates; slots are reused on merge.
    let mut dist = vec![0.0f64; n * n];
    for (i, j, d) in matrix.iter() {
        dist[i * n + j] = d;
        dist[j * n + i] = d;
    }
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<usize> = vec![1; n];
    // Any leaf contained in the cluster currently occupying each slot.
    let rep: Vec<usize> = (0..n).collect();

    struct RawMerge {
        leaf_a: usize,
        leaf_b: usize,
        distance: f64,
    }
    let mut raw: Vec<RawMerge> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);

    for _ in 0..(n - 1) {
        if chain.is_empty() {
            let start = active
                .iter()
                .position(|&a| a)
                .expect("at least two active clusters remain");
            chain.push(start);
        }
        loop {
            let a = *chain.last().expect("chain is non-empty");
            let prev = chain.len().checked_sub(2).map(|i| chain[i]);
            // Nearest active neighbour of `a`, preferring the chain
            // predecessor on ties so the chain terminates.
            let mut best: Option<(usize, f64)> = None;
            for c in 0..n {
                if c == a || !active[c] {
                    continue;
                }
                let d = dist[a * n + c];
                let better = match best {
                    None => true,
                    Some((bc, bd)) => d < bd || (d == bd && Some(c) == prev && Some(bc) != prev),
                };
                if better {
                    best = Some((c, d));
                }
            }
            let (b, d_ab) = best.expect("at least one other active cluster");
            if Some(b) == prev {
                // Reciprocal nearest neighbours: merge a and b.
                chain.pop();
                chain.pop();
                raw.push(RawMerge {
                    leaf_a: rep[a],
                    leaf_b: rep[b],
                    distance: d_ab,
                });
                merge_slots(&mut dist, &mut active, &mut size, n, a, b, d_ab, linkage);
                // Merged cluster lives in slot `a`; keep its representative.
                break;
            }
            chain.push(b);
        }
    }

    // Canonicalize: sort by distance, assign SciPy-style node ids.
    raw.sort_by(|x, y| x.distance.total_cmp(&y.distance));
    let mut uf = UnionFind::new(n);
    let mut node_of_root: Vec<usize> = (0..n).collect();
    let mut size_of_root: Vec<usize> = vec![1; n];
    let mut merges = Vec::with_capacity(raw.len());
    let mut reps = Vec::with_capacity(raw.len());
    for (k, rm) in raw.iter().enumerate() {
        let ra = uf.find(rm.leaf_a);
        let rb = uf.find(rm.leaf_b);
        debug_assert_ne!(ra, rb, "merge must join distinct clusters");
        let (left, right) = (node_of_root[ra], node_of_root[rb]);
        let new_size = size_of_root[ra] + size_of_root[rb];
        uf.union(rm.leaf_a, rm.leaf_b);
        let root = uf.find(rm.leaf_a);
        node_of_root[root] = n + k;
        size_of_root[root] = new_size;
        merges.push(Merge {
            left,
            right,
            distance: rm.distance,
            size: new_size,
        });
        reps.push((rm.leaf_a, rm.leaf_b));
    }

    Dendrogram { n, merges, reps }
}

/// Lance–Williams update merging slot `b` into slot `a`.
#[allow(clippy::too_many_arguments)]
fn merge_slots(
    dist: &mut [f64],
    active: &mut [bool],
    size: &mut [usize],
    n: usize,
    a: usize,
    b: usize,
    d_ab: f64,
    linkage: Linkage,
) {
    let (na, nb) = (size[a] as f64, size[b] as f64);
    for c in 0..n {
        if c == a || c == b || !active[c] {
            continue;
        }
        let dac = dist[a * n + c];
        let dbc = dist[b * n + c];
        let updated = match linkage {
            Linkage::Single => dac.min(dbc),
            Linkage::Complete => dac.max(dbc),
            Linkage::Average => (na * dac + nb * dbc) / (na + nb),
            Linkage::Ward => {
                let nc = size[c] as f64;
                let t = na + nb + nc;
                (((na + nc) * dac * dac + (nb + nc) * dbc * dbc - nc * d_ab * d_ab) / t)
                    .max(0.0)
                    .sqrt()
            }
        };
        dist[a * n + c] = updated;
        dist[c * n + a] = updated;
    }
    active[b] = false;
    size[a] += size[b];
}

/// Minimal union-find with path compression and union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{pairwise_matrix, Metric};

    fn two_blob_series() -> Vec<Vec<f64>> {
        // Blob A: flat around 0; blob B: flat around 10.
        let mut v = Vec::new();
        for i in 0..5 {
            v.push(vec![0.0 + i as f64 * 0.01; 8]);
        }
        for i in 0..4 {
            v.push(vec![10.0 + i as f64 * 0.01; 8]);
        }
        v
    }

    #[test]
    fn degenerate_sizes() {
        let d = cluster(&CondensedMatrix::zeros(0), Linkage::Average);
        assert_eq!(d.n_leaves(), 0);
        assert!(d.merges().is_empty());
        assert!(d.cut_k(3).is_empty());

        let d1 = cluster(&CondensedMatrix::zeros(1), Linkage::Average);
        assert_eq!(d1.n_leaves(), 1);
        assert_eq!(d1.cut_k(1), vec![0]);
        assert_eq!(d1.cut_at_distance(0.5), vec![0]);
    }

    #[test]
    fn merge_count_and_sizes() {
        let series = two_blob_series();
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let d = cluster(&m, linkage);
            assert_eq!(d.merges().len(), series.len() - 1);
            assert_eq!(d.merges().last().unwrap().size, series.len());
            // Distances are sorted ascending.
            for w in d.merges().windows(2) {
                assert!(w[0].distance <= w[1].distance + 1e-12);
            }
        }
    }

    #[test]
    fn two_blobs_recovered_by_all_linkages() {
        let series = two_blob_series();
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let d = cluster(&m, linkage);
            let labels = d.cut_k(2);
            // All of blob A shares a label distinct from blob B.
            let a = labels[0];
            assert!(
                labels[..5].iter().all(|&l| l == a),
                "{linkage:?}: {labels:?}"
            );
            let b = labels[5];
            assert_ne!(a, b);
            assert!(
                labels[5..].iter().all(|&l| l == b),
                "{linkage:?}: {labels:?}"
            );
        }
    }

    #[test]
    fn cut_at_distance_extremes() {
        let series = two_blob_series();
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        let d = cluster(&m, Linkage::Average);
        // Below the smallest merge distance: every leaf is its own cluster.
        let singletons = d.cut_at_distance(-1.0);
        assert_eq!(singletons, (0..series.len()).collect::<Vec<_>>());
        // Above the final merge distance: one cluster.
        let all = d.cut_at_distance(f64::INFINITY);
        assert!(all.iter().all(|&l| l == 0));
    }

    #[test]
    fn cut_k_clamps() {
        let series = two_blob_series();
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        let d = cluster(&m, Linkage::Average);
        let one = d.cut_k(0); // clamped to 1
        assert!(one.iter().all(|&l| l == 0));
        let all = d.cut_k(100); // clamped to n
        assert_eq!(all.len(), series.len());
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), series.len());
    }

    #[test]
    fn clusters_k_grouping() {
        let series = two_blob_series();
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        let d = cluster(&m, Linkage::Complete);
        let groups = d.clusters_k(2);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 5); // largest first
        assert_eq!(groups[1].len(), 4);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn three_well_separated_groups() {
        let mut series = Vec::new();
        for base in [0.0, 50.0, 100.0] {
            for i in 0..4 {
                series.push(vec![base + i as f64 * 0.1; 6]);
            }
        }
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        let d = cluster(&m, Linkage::Average);
        let groups = d.clusters_k(3);
        assert_eq!(groups.len(), 3);
        for g in &groups {
            assert_eq!(g.len(), 4);
            // Members of one group come from the same base block.
            let block = g[0] / 4;
            assert!(g.iter().all(|&leaf| leaf / 4 == block));
        }
        assert!(d.root_distance().unwrap() > 40.0);
    }

    #[test]
    fn single_vs_complete_chaining() {
        // A chain of points 0,1,2,...,7 spaced 1 apart plus a far point.
        let mut series: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64; 4]).collect();
        series.push(vec![100.0; 4]);
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        // Single linkage chains the whole run together before the far point.
        let single = cluster(&m, Linkage::Single);
        let labels = single.cut_k(2);
        assert!(labels[..8].iter().all(|&l| l == labels[0]));
        assert_ne!(labels[8], labels[0]);
    }

    #[test]
    fn dtw_metric_clusters_shifted_pulses_together() {
        // Two families: early pulses (possibly shifted) and late pulses.
        // A Sakoe–Chiba band is essential here: unconstrained DTW warps any
        // pulse onto any other perfectly, collapsing all distances to zero.
        let pulse = |start: usize| -> Vec<f64> {
            (0..48)
                .map(|i| {
                    if (start..start + 6).contains(&i) {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        };
        let series = vec![
            pulse(2),
            pulse(4),
            pulse(6), // early family
            pulse(30),
            pulse(32),
            pulse(34), // late family
        ];
        let m = pairwise_matrix(&series, Metric::Dtw { band: Some(4) }).unwrap();
        let d = cluster(&m, Linkage::Average);
        let labels = d.cut_k(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }
}
