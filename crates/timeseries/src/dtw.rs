//! Dynamic Time Warping.
//!
//! The paper (§IV-B) computes pairwise DTW distances between per-object
//! request-count time series and feeds them to hierarchical clustering.
//! This module provides an `O(N·M)` distance with optional Sakoe–Chiba band
//! constraint and a full path-recovering variant.

/// Options controlling a DTW computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DtwOptions {
    /// Sakoe–Chiba band half-width: cell `(i, j)` is admissible only when
    /// `|i - j| <= band` (after adjusting for unequal lengths). `None` means
    /// unconstrained.
    pub band: Option<usize>,
}

impl DtwOptions {
    /// Unconstrained DTW.
    pub fn unconstrained() -> Self {
        Self { band: None }
    }

    /// DTW constrained to a Sakoe–Chiba band of half-width `w`.
    pub fn banded(w: usize) -> Self {
        Self { band: Some(w) }
    }
}

/// DTW distance between two series using squared point cost and a
/// symmetric step pattern (match / insert / delete).
///
/// The returned value is the square root of the accumulated squared cost,
/// so `dtw(a, a) == 0` and equal-length identical series always yield zero.
/// Returns `f64::INFINITY` when either series is empty or the band is too
/// narrow to connect the two endpoints.
///
/// `band` — see [`DtwOptions::band`]; pass `None` for unconstrained.
///
/// # Example
///
/// ```
/// use oat_timeseries::dtw::dtw_distance;
///
/// let a = [0.0, 1.0, 2.0, 3.0];
/// let shifted = [0.0, 0.0, 1.0, 2.0, 3.0];
/// // Time-shifted copies are close under DTW...
/// assert!(dtw_distance(&a, &shifted, None) < 0.5);
/// // ...while a reversed series is far.
/// let reversed = [3.0, 2.0, 1.0, 0.0];
/// assert!(dtw_distance(&a, &reversed, None) > 2.0);
/// ```
pub fn dtw_distance(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let (n, m) = (a.len(), b.len());
    // Effective band: widen by the length difference so a path can exist.
    let band = band.map(|w| w + n.abs_diff(m));
    // Rolling two-row DP over the (n+1) x (m+1) accumulated-cost matrix.
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr[0] = f64::INFINITY;
        let (j_lo, j_hi) = band_limits(i, n, m, band);
        // Cells outside the band stay infinite; reset the in-band window's
        // left neighbour boundary.
        for c in curr.iter_mut().take(j_hi + 1).skip(j_lo) {
            *c = f64::INFINITY;
        }
        for j in j_lo..=j_hi {
            let cost = (a[i - 1] - b[j - 1]).powi(2);
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
        // Invalidate stale row contents outside next iteration's band.
        for c in curr.iter_mut() {
            *c = f64::INFINITY;
        }
    }
    prev[m].sqrt()
}

/// Inclusive column range `[j_lo, j_hi]` (1-based) admissible for row `i`.
fn band_limits(i: usize, n: usize, m: usize, band: Option<usize>) -> (usize, usize) {
    match band {
        None => (1, m),
        Some(w) => {
            // Map row i of n onto the diagonal of m columns.
            let center = if n == 1 { 1 } else { 1 + (i - 1) * (m - 1) / (n - 1) };
            let lo = center.saturating_sub(w).max(1);
            let hi = (center + w).min(m);
            (lo, hi)
        }
    }
}

/// Full DTW with warping-path recovery.
///
/// Returns `(distance, path)` where `path` is the sequence of `(i, j)` index
/// pairs (0-based) from `(0, 0)` to `(n-1, m-1)`. Unconstrained only — path
/// recovery keeps the full matrix, `O(N·M)` memory.
///
/// Returns `None` when either series is empty.
pub fn dtw_path(a: &[f64], b: &[f64]) -> Option<(f64, Vec<(usize, usize)>)> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let (n, m) = (a.len(), b.len());
    let mut acc = vec![f64::INFINITY; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    acc[idx(0, 0)] = 0.0;
    for i in 1..=n {
        for j in 1..=m {
            let cost = (a[i - 1] - b[j - 1]).powi(2);
            let best = acc[idx(i - 1, j)]
                .min(acc[idx(i, j - 1)])
                .min(acc[idx(i - 1, j - 1)]);
            acc[idx(i, j)] = cost + best;
        }
    }
    // Backtrack.
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        path.push((i - 1, j - 1));
        if i == 1 && j == 1 {
            break;
        }
        let diag = if i > 1 && j > 1 { acc[idx(i - 1, j - 1)] } else { f64::INFINITY };
        let up = if i > 1 { acc[idx(i - 1, j)] } else { f64::INFINITY };
        let left = if j > 1 { acc[idx(i, j - 1)] } else { f64::INFINITY };
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();
    Some((acc[idx(n, m)].sqrt(), path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_zero() {
        let a = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw_distance(&a, &a, None), 0.0);
        assert_eq!(dtw_distance(&a, &a, Some(0)), 0.0);
    }

    #[test]
    fn symmetry() {
        let a = [0.0, 1.0, 3.0, 2.0];
        let b = [1.0, 1.0, 2.0, 4.0, 0.0];
        let d1 = dtw_distance(&a, &b, None);
        let d2 = dtw_distance(&b, &a, None);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn empty_series_infinite() {
        assert!(dtw_distance(&[], &[1.0], None).is_infinite());
        assert!(dtw_distance(&[1.0], &[], None).is_infinite());
        assert!(dtw_path(&[], &[1.0]).is_none());
    }

    #[test]
    fn shift_invariance_vs_euclidean() {
        // A pulse and its shifted copy: DTW should be near zero while the
        // pointwise (lockstep) distance is large.
        let a: Vec<f64> = (0..50).map(|i| if (10..20).contains(&i) { 1.0 } else { 0.0 }).collect();
        let b: Vec<f64> = (0..50).map(|i| if (15..25).contains(&i) { 1.0 } else { 0.0 }).collect();
        let dtw = dtw_distance(&a, &b, None);
        let euclid: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dtw < 0.2 * euclid, "dtw {dtw} euclid {euclid}");
    }

    #[test]
    fn banded_upper_bounds_unconstrained() {
        let a: Vec<f64> = (0..30).map(|i| ((i as f64) * 0.4).sin()).collect();
        let b: Vec<f64> = (0..30).map(|i| ((i as f64) * 0.4 + 0.8).sin()).collect();
        let full = dtw_distance(&a, &b, None);
        let banded = dtw_distance(&a, &b, Some(3));
        assert!(banded >= full - 1e-12, "band can only restrict paths");
        let wide = dtw_distance(&a, &b, Some(30));
        assert!((wide - full).abs() < 1e-12);
    }

    #[test]
    fn band_zero_equals_lockstep_for_equal_lengths() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 2.0, 5.0];
        let banded = dtw_distance(&a, &b, Some(0));
        let lockstep = ((1.0f64).powi(2) + 0.0 + (2.0f64).powi(2)).sqrt();
        assert!((banded - lockstep).abs() < 1e-12);
    }

    #[test]
    fn unequal_lengths_band_still_connects() {
        let a = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [0.0, 5.0];
        let d = dtw_distance(&a, &b, Some(0));
        assert!(d.is_finite());
    }

    #[test]
    fn path_endpoints_and_monotonicity() {
        let a = [0.0, 1.0, 2.0, 1.0];
        let b = [0.0, 2.0, 1.0];
        let (d, path) = dtw_path(&a, &b).unwrap();
        assert!(d.is_finite());
        assert_eq!(*path.first().unwrap(), (0, 0));
        assert_eq!(*path.last().unwrap(), (3, 2));
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0);
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1);
            assert!(i1 + j1 > i0 + j0);
        }
    }

    #[test]
    fn path_distance_matches_distance_fn() {
        let a: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).cos()).collect();
        let b: Vec<f64> = (0..25).map(|i| (i as f64 * 0.25).cos()).collect();
        let (d_path, _) = dtw_path(&a, &b).unwrap();
        let d = dtw_distance(&a, &b, None);
        assert!((d_path - d).abs() < 1e-9);
    }

    #[test]
    fn options_constructors() {
        assert_eq!(DtwOptions::unconstrained().band, None);
        assert_eq!(DtwOptions::banded(5).band, Some(5));
        assert_eq!(DtwOptions::default().band, None);
    }

    #[test]
    fn single_point_series() {
        let d = dtw_distance(&[3.0], &[5.0], None);
        assert!((d - 2.0).abs() < 1e-12);
        let (dp, path) = dtw_path(&[3.0], &[5.0]).unwrap();
        assert!((dp - 2.0).abs() < 1e-12);
        assert_eq!(path, vec![(0, 0)]);
    }
}
