//! Dynamic Time Warping.
//!
//! The paper (§IV-B) computes pairwise DTW distances between per-object
//! request-count time series and feeds them to hierarchical clustering.
//! This module provides an `O(N·M)` distance with optional Sakoe–Chiba band
//! constraint and a full path-recovering variant.

/// Options controlling a DTW computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DtwOptions {
    /// Sakoe–Chiba band half-width: cell `(i, j)` is admissible only when
    /// `|i - j| <= band` (after adjusting for unequal lengths). `None` means
    /// unconstrained.
    pub band: Option<usize>,
}

impl DtwOptions {
    /// Unconstrained DTW.
    pub fn unconstrained() -> Self {
        Self { band: None }
    }

    /// DTW constrained to a Sakoe–Chiba band of half-width `w`.
    pub fn banded(w: usize) -> Self {
        Self { band: Some(w) }
    }
}

/// DTW distance between two series using squared point cost and a
/// symmetric step pattern (match / insert / delete).
///
/// The returned value is the square root of the accumulated squared cost,
/// so `dtw(a, a) == 0` and equal-length identical series always yield zero.
/// Returns `f64::INFINITY` when either series is empty or the band is too
/// narrow to connect the two endpoints.
///
/// `band` — see [`DtwOptions::band`]; pass `None` for unconstrained.
///
/// # Example
///
/// ```
/// use oat_timeseries::dtw::dtw_distance;
///
/// let a = [0.0, 1.0, 2.0, 3.0];
/// let shifted = [0.0, 0.0, 1.0, 2.0, 3.0];
/// // Time-shifted copies are close under DTW...
/// assert!(dtw_distance(&a, &shifted, None) < 0.5);
/// // ...while a reversed series is far.
/// let reversed = [3.0, 2.0, 1.0, 0.0];
/// assert!(dtw_distance(&a, &reversed, None) > 2.0);
/// ```
pub fn dtw_distance(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    dtw_core(a, b, band, f64::INFINITY).sqrt()
}

/// Early-abandoning DTW distance.
///
/// Identical to [`dtw_distance`] — same arithmetic, in the same order, so a
/// completed computation is bit-identical — except that after each DP row
/// the row minimum (a lower bound on any completion of the warping path) is
/// compared against `cutoff`: once the distance provably exceeds `cutoff`,
/// the remaining rows are skipped and `f64::INFINITY` is returned.
///
/// The exact distance is always returned when it is `<= cutoff`; when the
/// true distance exceeds `cutoff` the result is either that exact distance
/// or `f64::INFINITY`. This makes the variant suitable wherever only an
/// argmin matters (nearest-neighbour queries, medoid refinement, k-medoids
/// assignment) with `cutoff` set to the best distance seen so far: a pruned
/// candidate can never have won.
///
/// # Example
///
/// ```
/// use oat_timeseries::dtw::{dtw_distance, dtw_distance_ea};
///
/// let a = [0.0, 1.0, 2.0, 3.0];
/// let b = [3.0, 2.0, 1.0, 0.0];
/// let exact = dtw_distance(&a, &b, None);
/// // A generous cutoff reproduces the exact distance bit-for-bit...
/// assert_eq!(dtw_distance_ea(&a, &b, None, exact + 1.0), exact);
/// // ...while a hopeless one abandons early.
/// assert!(dtw_distance_ea(&a, &b, None, 0.1).is_infinite());
/// ```
pub fn dtw_distance_ea(a: &[f64], b: &[f64], band: Option<usize>, cutoff: f64) -> f64 {
    dtw_core(a, b, band, cutoff).sqrt()
}

/// Shared DP core: returns the accumulated *squared* cost, abandoning with
/// `f64::INFINITY` once every in-band cell of a row exceeds `cutoff`
/// (compared in the un-squared domain: squaring the cutoff instead can
/// round below the true squared distance and wrongly prune a candidate
/// sitting exactly at the cutoff).
fn dtw_core(a: &[f64], b: &[f64], band: Option<usize>, cutoff: f64) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let (n, m) = (a.len(), b.len());
    // Effective band: widen by the length difference so a path can exist.
    let band = band.map(|w| w + n.abs_diff(m));
    // Rolling two-row DP over the (n+1) x (m+1) accumulated-cost matrix.
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr[0] = f64::INFINITY;
        let (j_lo, j_hi) = band_limits(i, n, m, band);
        // Cells outside the band stay infinite; reset the in-band window's
        // left neighbour boundary.
        for c in curr.iter_mut().take(j_hi + 1).skip(j_lo) {
            *c = f64::INFINITY;
        }
        for j in j_lo..=j_hi {
            let cost = (a[i - 1] - b[j - 1]).powi(2);
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        // Early abandon: every warping path crosses each row, so the row
        // minimum lower-bounds the final cost. Checked only for finite
        // cutoffs to keep the exhaustive path branch-free.
        if cutoff.is_finite() {
            let row_min = curr[j_lo..=j_hi]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            if row_min.sqrt() > cutoff {
                return f64::INFINITY;
            }
        }
        std::mem::swap(&mut prev, &mut curr);
        // Invalidate stale row contents outside next iteration's band.
        for c in curr.iter_mut() {
            *c = f64::INFINITY;
        }
    }
    prev[m]
}

/// Inclusive column range `[j_lo, j_hi]` (1-based) admissible for row `i`.
fn band_limits(i: usize, n: usize, m: usize, band: Option<usize>) -> (usize, usize) {
    match band {
        None => (1, m),
        Some(w) => {
            // Map row i of n onto the diagonal of m columns.
            let center = if n == 1 {
                1
            } else {
                1 + (i - 1) * (m - 1) / (n - 1)
            };
            let lo = center.saturating_sub(w).max(1);
            let hi = (center + w).min(m);
            (lo, hi)
        }
    }
}

/// Full DTW with warping-path recovery.
///
/// Returns `(distance, path)` where `path` is the sequence of `(i, j)` index
/// pairs (0-based) from `(0, 0)` to `(n-1, m-1)`. Unconstrained only — path
/// recovery keeps the full matrix, `O(N·M)` memory.
///
/// Returns `None` when either series is empty.
pub fn dtw_path(a: &[f64], b: &[f64]) -> Option<(f64, Vec<(usize, usize)>)> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let (n, m) = (a.len(), b.len());
    let mut acc = vec![f64::INFINITY; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    acc[idx(0, 0)] = 0.0;
    for i in 1..=n {
        for j in 1..=m {
            let cost = (a[i - 1] - b[j - 1]).powi(2);
            let best = acc[idx(i - 1, j)]
                .min(acc[idx(i, j - 1)])
                .min(acc[idx(i - 1, j - 1)]);
            acc[idx(i, j)] = cost + best;
        }
    }
    // Backtrack.
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        path.push((i - 1, j - 1));
        if i == 1 && j == 1 {
            break;
        }
        let diag = if i > 1 && j > 1 {
            acc[idx(i - 1, j - 1)]
        } else {
            f64::INFINITY
        };
        let up = if i > 1 {
            acc[idx(i - 1, j)]
        } else {
            f64::INFINITY
        };
        let left = if j > 1 {
            acc[idx(i, j - 1)]
        } else {
            f64::INFINITY
        };
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();
    Some((acc[idx(n, m)].sqrt(), path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_zero() {
        let a = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw_distance(&a, &a, None), 0.0);
        assert_eq!(dtw_distance(&a, &a, Some(0)), 0.0);
    }

    #[test]
    fn symmetry() {
        let a = [0.0, 1.0, 3.0, 2.0];
        let b = [1.0, 1.0, 2.0, 4.0, 0.0];
        let d1 = dtw_distance(&a, &b, None);
        let d2 = dtw_distance(&b, &a, None);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn empty_series_infinite() {
        assert!(dtw_distance(&[], &[1.0], None).is_infinite());
        assert!(dtw_distance(&[1.0], &[], None).is_infinite());
        assert!(dtw_path(&[], &[1.0]).is_none());
    }

    #[test]
    fn shift_invariance_vs_euclidean() {
        // A pulse and its shifted copy: DTW should be near zero while the
        // pointwise (lockstep) distance is large.
        let a: Vec<f64> = (0..50)
            .map(|i| if (10..20).contains(&i) { 1.0 } else { 0.0 })
            .collect();
        let b: Vec<f64> = (0..50)
            .map(|i| if (15..25).contains(&i) { 1.0 } else { 0.0 })
            .collect();
        let dtw = dtw_distance(&a, &b, None);
        let euclid: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dtw < 0.2 * euclid, "dtw {dtw} euclid {euclid}");
    }

    #[test]
    fn banded_upper_bounds_unconstrained() {
        let a: Vec<f64> = (0..30).map(|i| ((i as f64) * 0.4).sin()).collect();
        let b: Vec<f64> = (0..30).map(|i| ((i as f64) * 0.4 + 0.8).sin()).collect();
        let full = dtw_distance(&a, &b, None);
        let banded = dtw_distance(&a, &b, Some(3));
        assert!(banded >= full - 1e-12, "band can only restrict paths");
        let wide = dtw_distance(&a, &b, Some(30));
        assert!((wide - full).abs() < 1e-12);
    }

    #[test]
    fn band_zero_equals_lockstep_for_equal_lengths() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 2.0, 5.0];
        let banded = dtw_distance(&a, &b, Some(0));
        let lockstep = ((1.0f64).powi(2) + 0.0 + (2.0f64).powi(2)).sqrt();
        assert!((banded - lockstep).abs() < 1e-12);
    }

    #[test]
    fn unequal_lengths_band_still_connects() {
        let a = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [0.0, 5.0];
        let d = dtw_distance(&a, &b, Some(0));
        assert!(d.is_finite());
    }

    #[test]
    fn path_endpoints_and_monotonicity() {
        let a = [0.0, 1.0, 2.0, 1.0];
        let b = [0.0, 2.0, 1.0];
        let (d, path) = dtw_path(&a, &b).unwrap();
        assert!(d.is_finite());
        assert_eq!(*path.first().unwrap(), (0, 0));
        assert_eq!(*path.last().unwrap(), (3, 2));
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0);
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1);
            assert!(i1 + j1 > i0 + j0);
        }
    }

    #[test]
    fn path_distance_matches_distance_fn() {
        let a: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).cos()).collect();
        let b: Vec<f64> = (0..25).map(|i| (i as f64 * 0.25).cos()).collect();
        let (d_path, _) = dtw_path(&a, &b).unwrap();
        let d = dtw_distance(&a, &b, None);
        assert!((d_path - d).abs() < 1e-9);
    }

    #[test]
    fn options_constructors() {
        assert_eq!(DtwOptions::unconstrained().band, None);
        assert_eq!(DtwOptions::banded(5).band, Some(5));
        assert_eq!(DtwOptions::default().band, None);
    }

    #[test]
    fn early_abandon_matches_exact_below_cutoff() {
        let a: Vec<f64> = (0..60).map(|i| (i as f64 * 0.21).sin()).collect();
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.21 + 0.4).sin()).collect();
        for band in [None, Some(0), Some(5), Some(100)] {
            let exact = dtw_distance(&a, &b, band);
            // Cutoff at, above, and far above the distance: bit-identical.
            assert_eq!(dtw_distance_ea(&a, &b, band, exact), exact);
            assert_eq!(dtw_distance_ea(&a, &b, band, exact * 2.0), exact);
            assert_eq!(dtw_distance_ea(&a, &b, band, f64::INFINITY), exact);
        }
    }

    #[test]
    fn early_abandon_prunes_hopeless_cutoffs() {
        let a: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..60).map(|i| -(i as f64)).collect();
        let exact = dtw_distance(&a, &b, Some(4));
        assert!(exact > 1.0);
        let pruned = dtw_distance_ea(&a, &b, Some(4), exact / 10.0);
        assert!(
            pruned.is_infinite(),
            "abandoned computation returns infinity"
        );
        // Zero cutoff admits only identical series.
        assert_eq!(dtw_distance_ea(&a, &a, None, 0.0), 0.0);
        assert!(dtw_distance_ea(&a, &b, None, 0.0).is_infinite());
    }

    #[test]
    fn early_abandon_empty_series_infinite() {
        assert!(dtw_distance_ea(&[], &[1.0], None, 100.0).is_infinite());
        assert!(dtw_distance_ea(&[1.0], &[], None, 100.0).is_infinite());
    }

    #[test]
    fn single_point_series() {
        let d = dtw_distance(&[3.0], &[5.0], None);
        assert!((d - 2.0).abs() < 1e-12);
        let (dp, path) = dtw_path(&[3.0], &[5.0]).unwrap();
        assert!((dp - 2.0).abs() < 1e-12);
        assert_eq!(path, vec![(0, 0)]);
    }
}
