//! Temporal popularity-trend classification.
//!
//! The paper's clustering analysis (Figures 8–10) identifies four dominant
//! popularity trends for adult objects:
//!
//! * **diurnal** — requested continuously with regular day/night variation
//!   (typically front-page content),
//! * **long-lived** — peaks within the first day after injection and decays
//!   diurnally over several days,
//! * **short-lived** — peaks immediately and dies within hours,
//! * **flash-crowd** — a sudden mid-trace spike (P-2's fourth cluster),
//! * plus **outliers** that fit none of the above.
//!
//! [`classify_trend`] maps an hourly request-count series to one of these
//! classes using interpretable features ([`TrendFeatures`]).

use serde::{Deserialize, Serialize};

/// The dominant temporal popularity pattern of one object (or one cluster
/// medoid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrendClass {
    /// Persistent access with day/night oscillation across the whole trace.
    Diurnal,
    /// Peaks early, decays over multiple days, eventually dies.
    LongLived,
    /// Peaks immediately and dies within roughly a day.
    ShortLived,
    /// A sudden spike well after injection.
    FlashCrowd,
    /// None of the recognized patterns.
    Outlier,
}

impl std::fmt::Display for TrendClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrendClass::Diurnal => "diurnal",
            TrendClass::LongLived => "long-lived",
            TrendClass::ShortLived => "short-lived",
            TrendClass::FlashCrowd => "flash-crowd",
            TrendClass::Outlier => "outlier",
        };
        f.write_str(s)
    }
}

/// Interpretable features extracted from an hourly request series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrendFeatures {
    /// Lag-`period` autocorrelation (day-over-day self-similarity).
    pub autocorr_period: f64,
    /// Index of the peak hour.
    pub peak_index: usize,
    /// Fraction of total mass within ± half a period around the peak.
    pub peak_concentration: f64,
    /// Hours (indices) needed to accumulate 90 % of total mass.
    pub t90: usize,
    /// Fraction of total mass in the final period (last day).
    pub last_period_mass: f64,
    /// Total mass of the series.
    pub total: f64,
}

/// Extracts [`TrendFeatures`] from an hourly series with the given period
/// (24 for hourly data). Returns `None` for an empty or zero series, a zero
/// period, or non-finite values.
pub fn trend_features(series: &[f64], period: usize) -> Option<TrendFeatures> {
    if series.is_empty() || period == 0 {
        return None;
    }
    if series.iter().any(|x| !x.is_finite() || *x < 0.0) {
        return None;
    }
    let total: f64 = series.iter().sum();
    if total == 0.0 {
        return None;
    }
    let n = series.len();

    // Peak.
    // First index attaining the maximum (ties break early).
    let mut peak_index = 0;
    for (i, &x) in series.iter().enumerate() {
        if x > series[peak_index] {
            peak_index = i;
        }
    }

    // Mass within ± period/2 of the peak.
    let half = period / 2;
    let lo = peak_index.saturating_sub(half);
    let hi = (peak_index + half + 1).min(n);
    let peak_concentration = series[lo..hi].iter().sum::<f64>() / total;

    // Time to 90 % of mass.
    let mut acc = 0.0;
    let mut t90 = n - 1;
    for (i, &x) in series.iter().enumerate() {
        acc += x;
        if acc >= 0.9 * total {
            t90 = i;
            break;
        }
    }

    // Mass in the final period.
    let tail_start = n.saturating_sub(period);
    let last_period_mass = series[tail_start..].iter().sum::<f64>() / total;

    // Lag-period autocorrelation.
    let autocorr_period = autocorrelation(series, period).unwrap_or(0.0);

    Some(TrendFeatures {
        autocorr_period,
        peak_index,
        peak_concentration,
        t90,
        last_period_mass,
        total,
    })
}

/// Pearson autocorrelation of a series at the given lag.
///
/// Returns `None` when the overlap is shorter than two points or either
/// window has zero variance.
pub fn autocorrelation(series: &[f64], lag: usize) -> Option<f64> {
    if lag == 0 || series.len() <= lag + 1 {
        return None;
    }
    let a = &series[..series.len() - lag];
    let b = &series[lag..];
    oat_stats::pearson(a, b)
}

/// Classifies an hourly request-count series into a [`TrendClass`].
///
/// `period` is the number of samples per day (24 for hourly series). The
/// thresholds mirror the qualitative definitions in the paper: strongly
/// concentrated mass near an early peak ⇒ short-lived; the same spike later
/// in the trace ⇒ flash crowd; day-over-day self-similarity sustained to the
/// end of the trace ⇒ diurnal; early peak with multi-day decay ⇒ long-lived.
///
/// Returns [`TrendClass::Outlier`] for series whose features are undefined
/// (empty/zero) or fit nothing else.
pub fn classify_trend(series: &[f64], period: usize) -> TrendClass {
    let Some(f) = trend_features(series, period) else {
        return TrendClass::Outlier;
    };
    classify_features(&f, period, series.len())
}

/// Classifies pre-computed features; see [`classify_trend`].
pub fn classify_features(f: &TrendFeatures, period: usize, len: usize) -> TrendClass {
    // A single overwhelming burst: short-lived when it opens the trace,
    // flash crowd when it arrives later.
    if f.peak_concentration >= 0.7 {
        return if f.peak_index < period {
            TrendClass::ShortLived
        } else {
            TrendClass::FlashCrowd
        };
    }
    // Persistent, self-similar day/night pattern that is still alive in the
    // final day.
    let periods = (len / period).max(1) as f64;
    if f.autocorr_period >= 0.25 && f.last_period_mass >= 0.5 / periods {
        return TrendClass::Diurnal;
    }
    // Early peak, bulk of mass within the first few days, dies by the end.
    if f.peak_index < 2 * period && f.t90 <= 4 * period && f.last_period_mass < 0.1 {
        return TrendClass::LongLived;
    }
    TrendClass::Outlier
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: usize = 24;
    const WEEK: usize = 7 * H;

    fn diurnal_series() -> Vec<f64> {
        (0..WEEK)
            .map(|t| {
                let hour = t % H;
                let day_shape = 1.0 + ((hour as f64 / H as f64) * std::f64::consts::TAU).sin();
                10.0 * day_shape + 1.0
            })
            .collect()
    }

    fn long_lived_series() -> Vec<f64> {
        (0..WEEK)
            .map(|t| {
                let decay = (-(t as f64) / 30.0).exp();
                let hour = t % H;
                let day_shape = 1.0 + ((hour as f64 / H as f64) * std::f64::consts::TAU).sin();
                100.0 * decay * day_shape
            })
            .collect()
    }

    fn short_lived_series() -> Vec<f64> {
        (0..WEEK).map(|t| if t < 5 { 100.0 } else { 0.0 }).collect()
    }

    fn flash_crowd_series() -> Vec<f64> {
        (0..WEEK)
            .map(|t| if (80..86).contains(&t) { 100.0 } else { 0.1 })
            .collect()
    }

    #[test]
    fn classifies_planted_archetypes() {
        assert_eq!(classify_trend(&diurnal_series(), H), TrendClass::Diurnal);
        assert_eq!(
            classify_trend(&long_lived_series(), H),
            TrendClass::LongLived
        );
        assert_eq!(
            classify_trend(&short_lived_series(), H),
            TrendClass::ShortLived
        );
        assert_eq!(
            classify_trend(&flash_crowd_series(), H),
            TrendClass::FlashCrowd
        );
    }

    #[test]
    fn degenerate_series_are_outliers() {
        assert_eq!(classify_trend(&[], H), TrendClass::Outlier);
        assert_eq!(classify_trend(&vec![0.0; WEEK], H), TrendClass::Outlier);
        assert_eq!(classify_trend(&[1.0, f64::NAN], H), TrendClass::Outlier);
        assert_eq!(classify_trend(&[1.0], 0), TrendClass::Outlier);
    }

    #[test]
    fn features_of_uniform_series() {
        let f = trend_features(&vec![1.0; WEEK], H).unwrap();
        assert_eq!(f.peak_index, 0);
        assert!((f.last_period_mass - 1.0 / 7.0).abs() < 1e-9);
        assert!(f.t90 >= (0.9 * WEEK as f64) as usize - 1);
        assert_eq!(f.total, WEEK as f64);
    }

    #[test]
    fn autocorrelation_periodic_signal() {
        let s = diurnal_series();
        let ac24 = autocorrelation(&s, H).unwrap();
        assert!(ac24 > 0.9, "diurnal lag-24 autocorr {ac24}");
        let ac12 = autocorrelation(&s, H / 2).unwrap();
        assert!(
            ac12 < 0.0,
            "half-period autocorr should be negative, got {ac12}"
        );
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 0), None);
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), None);
        // Constant series: zero variance.
        assert_eq!(autocorrelation(&[1.0; 50], 10), None);
    }

    #[test]
    fn short_vs_flash_depends_on_peak_time() {
        // Same burst shape, different position.
        let mut early = vec![0.0; WEEK];
        for x in early.iter_mut().take(4) {
            *x = 50.0;
        }
        let mut late = vec![0.0; WEEK];
        for x in late.iter_mut().skip(100).take(4) {
            *x = 50.0;
        }
        assert_eq!(classify_trend(&early, H), TrendClass::ShortLived);
        assert_eq!(classify_trend(&late, H), TrendClass::FlashCrowd);
    }

    #[test]
    fn display_labels() {
        assert_eq!(TrendClass::Diurnal.to_string(), "diurnal");
        assert_eq!(TrendClass::LongLived.to_string(), "long-lived");
        assert_eq!(TrendClass::ShortLived.to_string(), "short-lived");
        assert_eq!(TrendClass::FlashCrowd.to_string(), "flash-crowd");
        assert_eq!(TrendClass::Outlier.to_string(), "outlier");
    }

    #[test]
    fn feature_peak_concentration_bounds() {
        let f = trend_features(&short_lived_series(), H).unwrap();
        assert!(f.peak_concentration >= 0.99);
        let g = trend_features(&vec![1.0; WEEK], H).unwrap();
        assert!(g.peak_concentration < 0.2);
    }
}
