//! Condensed (upper-triangular) symmetric distance matrix.

use serde::{Deserialize, Serialize};

/// A symmetric `n × n` distance matrix stored as the upper triangle
/// (`n·(n-1)/2` entries) with an implicit zero diagonal.
///
/// # Example
///
/// ```
/// use oat_timeseries::CondensedMatrix;
///
/// let mut m = CondensedMatrix::zeros(3);
/// m.set(0, 2, 5.0);
/// assert_eq!(m.get(2, 0), 5.0);
/// assert_eq!(m.get(1, 1), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CondensedMatrix {
    /// Creates an all-zero matrix for `n` points.
    pub fn zeros(n: usize) -> Self {
        let len = n * n.saturating_sub(1) / 2;
        Self {
            n,
            data: vec![0.0; len],
        }
    }

    /// Number of points (rows/columns).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j);
        // Offset of row i within the condensed upper triangle.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Distance between points `i` and `j` (zero when `i == j`).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        match i.cmp(&j) {
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Less => self.data[self.index(i, j)],
            std::cmp::Ordering::Greater => self.data[self.index(j, i)],
        }
    }

    /// Sets the distance between `i` and `j` (both orders).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or `i == j` with a non-zero value.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            assert!(value == 0.0, "diagonal must stay zero");
            return;
        }
        let idx = if i < j {
            self.index(i, j)
        } else {
            self.index(j, i)
        };
        self.data[idx] = value;
    }

    /// The raw condensed buffer (row-major upper triangle, `i < j`).
    ///
    /// Useful for bit-level comparisons between construction strategies —
    /// the parallel fill contract is that this slice is identical no matter
    /// how many threads produced it.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Fills every strict-upper-triangle entry with `f(i, j)` using
    /// `threads` worker threads (`0` = available parallelism).
    ///
    /// The condensed buffer is split into contiguous disjoint `&mut [f64]`
    /// chunks, one per worker, so the hot path takes no locks and performs
    /// no allocation beyond the thread stacks. Each entry's value depends
    /// only on `f(i, j)`, never on fill order, so the result is
    /// bit-identical at every thread count.
    ///
    /// # Example
    ///
    /// ```
    /// use oat_timeseries::CondensedMatrix;
    ///
    /// let mut serial = CondensedMatrix::zeros(5);
    /// serial.par_fill(1, |i, j| (i * 10 + j) as f64);
    /// let mut parallel = CondensedMatrix::zeros(5);
    /// parallel.par_fill(4, |i, j| (i * 10 + j) as f64);
    /// assert_eq!(serial, parallel);
    /// assert_eq!(serial.get(2, 4), 24.0);
    /// ```
    pub fn par_fill<F>(&mut self, threads: usize, f: F)
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        let len = self.data.len();
        if len == 0 {
            return;
        }
        let n = self.n;
        let threads = resolve_threads(threads).min(len);
        if threads <= 1 {
            fill_chunk(n, 0, &mut self.data, &f);
            return;
        }
        let chunk_len = len.div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for (c, chunk) in self.data.chunks_mut(chunk_len).enumerate() {
                let f = &f;
                scope.spawn(move |_| fill_chunk(n, c * chunk_len, chunk, f));
            }
        })
        .expect("par_fill worker panicked");
    }

    /// Iterates over all `(i, j, distance)` pairs with `i < j`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| ((i + 1)..self.n).map(move |j| (i, j, self.get(i, j))))
    }

    /// The maximum off-diagonal distance (`None` for n < 2).
    pub fn max_distance(&self) -> Option<f64> {
        self.data.iter().copied().fold(None, |acc, d| {
            Some(match acc {
                None => d,
                Some(m) => m.max(d),
            })
        })
    }
}

/// Worker-thread count: `0` means whatever the machine offers.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Fills one contiguous condensed-buffer chunk starting at flat offset
/// `start`, walking `(i, j)` forward instead of re-deriving each pair.
fn fill_chunk<F>(n: usize, start: usize, chunk: &mut [f64], f: &F)
where
    F: Fn(usize, usize) -> f64,
{
    let (mut i, mut j) = pair_at(n, start);
    for slot in chunk {
        *slot = f(i, j);
        j += 1;
        if j == n {
            i += 1;
            j = i + 1;
        }
    }
}

/// The `(i, j)` pair stored at condensed offset `k` (binary search over
/// row start offsets).
fn pair_at(n: usize, k: usize) -> (usize, usize) {
    let row_start = |i: usize| i * n - i * (i + 1) / 2;
    debug_assert!(n >= 2 && k < row_start(n - 1));
    let (mut lo, mut hi) = (0usize, n - 2);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if row_start(mid) <= k {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    (lo, lo + 1 + (k - row_start(lo)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_sizes() {
        let m = CondensedMatrix::zeros(4);
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert_eq!(m.iter().count(), 6);
        let empty = CondensedMatrix::zeros(0);
        assert!(empty.is_empty());
        assert_eq!(CondensedMatrix::zeros(1).iter().count(), 0);
    }

    #[test]
    fn set_get_symmetric() {
        let mut m = CondensedMatrix::zeros(5);
        m.set(1, 3, 2.5);
        m.set(4, 0, 7.0);
        assert_eq!(m.get(3, 1), 2.5);
        assert_eq!(m.get(0, 4), 7.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn diagonal_zero_set_ok() {
        let mut m = CondensedMatrix::zeros(3);
        m.set(1, 1, 0.0); // allowed no-op
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_nonzero_panics() {
        let mut m = CondensedMatrix::zeros(3);
        m.set(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = CondensedMatrix::zeros(2);
        let _ = m.get(0, 2);
    }

    #[test]
    fn pair_at_inverts_index() {
        for n in [2usize, 3, 5, 8, 13] {
            let m = CondensedMatrix::zeros(n);
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(m.index(i, j), k);
                    assert_eq!(pair_at(n, k), (i, j), "n={n} k={k}");
                    k += 1;
                }
            }
        }
    }

    #[test]
    fn par_fill_matches_serial_at_every_thread_count() {
        let f = |i: usize, j: usize| (i as f64 * 97.3 + j as f64 * 13.7).sin();
        for n in [2usize, 3, 7, 20, 33] {
            let mut serial = CondensedMatrix::zeros(n);
            serial.par_fill(1, f);
            for threads in [2usize, 3, 8, 64] {
                let mut parallel = CondensedMatrix::zeros(n);
                parallel.par_fill(threads, f);
                assert_eq!(serial, parallel, "n={n} threads={threads}");
                assert_eq!(serial.as_slice(), parallel.as_slice());
            }
        }
    }

    #[test]
    fn par_fill_visits_correct_pairs() {
        let mut m = CondensedMatrix::zeros(9);
        m.par_fill(0, |i, j| (i * 100 + j) as f64);
        for i in 0..9 {
            for j in (i + 1)..9 {
                assert_eq!(m.get(i, j), (i * 100 + j) as f64);
            }
        }
    }

    #[test]
    fn par_fill_degenerate_sizes() {
        // n < 2 has no entries; must not panic.
        CondensedMatrix::zeros(0).par_fill(4, |_, _| 1.0);
        CondensedMatrix::zeros(1).par_fill(4, |_, _| 1.0);
        // More threads than entries.
        let mut m = CondensedMatrix::zeros(2);
        m.par_fill(16, |i, j| (i + j) as f64);
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn all_pairs_covered() {
        let n = 6;
        let mut m = CondensedMatrix::zeros(n);
        let mut v = 1.0;
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, v);
                v += 1.0;
            }
        }
        let mut seen = std::collections::HashSet::new();
        for (i, j, d) in m.iter() {
            assert!(i < j);
            assert!(d >= 1.0);
            seen.insert((i, j));
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
        assert_eq!(m.max_distance(), Some(15.0));
    }
}
