//! Condensed (upper-triangular) symmetric distance matrix.

use serde::{Deserialize, Serialize};

/// A symmetric `n × n` distance matrix stored as the upper triangle
/// (`n·(n-1)/2` entries) with an implicit zero diagonal.
///
/// # Example
///
/// ```
/// use oat_timeseries::CondensedMatrix;
///
/// let mut m = CondensedMatrix::zeros(3);
/// m.set(0, 2, 5.0);
/// assert_eq!(m.get(2, 0), 5.0);
/// assert_eq!(m.get(1, 1), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CondensedMatrix {
    /// Creates an all-zero matrix for `n` points.
    pub fn zeros(n: usize) -> Self {
        let len = n * n.saturating_sub(1) / 2;
        Self { n, data: vec![0.0; len] }
    }

    /// Number of points (rows/columns).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j);
        // Offset of row i within the condensed upper triangle.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Distance between points `i` and `j` (zero when `i == j`).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        match i.cmp(&j) {
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Less => self.data[self.index(i, j)],
            std::cmp::Ordering::Greater => self.data[self.index(j, i)],
        }
    }

    /// Sets the distance between `i` and `j` (both orders).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or `i == j` with a non-zero value.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            assert!(value == 0.0, "diagonal must stay zero");
            return;
        }
        let idx = if i < j { self.index(i, j) } else { self.index(j, i) };
        self.data[idx] = value;
    }

    /// Iterates over all `(i, j, distance)` pairs with `i < j`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            ((i + 1)..self.n).map(move |j| (i, j, self.get(i, j)))
        })
    }

    /// The maximum off-diagonal distance (`None` for n < 2).
    pub fn max_distance(&self) -> Option<f64> {
        self.data.iter().copied().fold(None, |acc, d| {
            Some(match acc {
                None => d,
                Some(m) => m.max(d),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_sizes() {
        let m = CondensedMatrix::zeros(4);
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert_eq!(m.iter().count(), 6);
        let empty = CondensedMatrix::zeros(0);
        assert!(empty.is_empty());
        assert_eq!(CondensedMatrix::zeros(1).iter().count(), 0);
    }

    #[test]
    fn set_get_symmetric() {
        let mut m = CondensedMatrix::zeros(5);
        m.set(1, 3, 2.5);
        m.set(4, 0, 7.0);
        assert_eq!(m.get(3, 1), 2.5);
        assert_eq!(m.get(0, 4), 7.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn diagonal_zero_set_ok() {
        let mut m = CondensedMatrix::zeros(3);
        m.set(1, 1, 0.0); // allowed no-op
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_nonzero_panics() {
        let mut m = CondensedMatrix::zeros(3);
        m.set(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = CondensedMatrix::zeros(2);
        let _ = m.get(0, 2);
    }

    #[test]
    fn all_pairs_covered() {
        let n = 6;
        let mut m = CondensedMatrix::zeros(n);
        let mut v = 1.0;
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, v);
                v += 1.0;
            }
        }
        let mut seen = std::collections::HashSet::new();
        for (i, j, d) in m.iter() {
            assert!(i < j);
            assert!(d >= 1.0);
            seen.insert((i, j));
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
        assert_eq!(m.max_distance(), Some(15.0));
    }
}
