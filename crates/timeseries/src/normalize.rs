//! Series normalization and smoothing helpers.

/// Scales a series so its elements sum to 1 (the paper's "normalized request
/// count").
///
/// Returns `None` when the series is empty, contains a non-finite or
/// negative value, or sums to zero.
///
/// # Example
///
/// ```
/// use oat_timeseries::normalize::sum_normalize;
///
/// let n = sum_normalize(&[1.0, 3.0]).unwrap();
/// assert_eq!(n, vec![0.25, 0.75]);
/// ```
pub fn sum_normalize(series: &[f64]) -> Option<Vec<f64>> {
    if series.is_empty() {
        return None;
    }
    if series.iter().any(|x| !x.is_finite() || *x < 0.0) {
        return None;
    }
    let total: f64 = series.iter().sum();
    if total == 0.0 {
        return None;
    }
    Some(series.iter().map(|x| x / total).collect())
}

/// Z-normalizes a series (zero mean, unit variance).
///
/// Returns `None` when the series is empty, contains non-finite values, or
/// has zero variance.
pub fn z_normalize(series: &[f64]) -> Option<Vec<f64>> {
    if series.is_empty() || series.iter().any(|x| !x.is_finite()) {
        return None;
    }
    let n = series.len() as f64;
    let mean = series.iter().sum::<f64>() / n;
    let var = series.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    if var == 0.0 {
        return None;
    }
    let std = var.sqrt();
    Some(series.iter().map(|x| (x - mean) / std).collect())
}

/// Scales a series to `[0, 1]` by its max.
///
/// Returns `None` when empty, non-finite, negative, or all-zero.
pub fn max_normalize(series: &[f64]) -> Option<Vec<f64>> {
    if series.is_empty() {
        return None;
    }
    if series.iter().any(|x| !x.is_finite() || *x < 0.0) {
        return None;
    }
    let max = series.iter().copied().fold(0.0f64, f64::max);
    if max == 0.0 {
        return None;
    }
    Some(series.iter().map(|x| x / max).collect())
}

/// Centered moving-average smoothing with half-width `w` (window `2w + 1`,
/// truncated at the edges). `w = 0` returns the series unchanged.
pub fn moving_average(series: &[f64], w: usize) -> Vec<f64> {
    if w == 0 || series.is_empty() {
        return series.to_vec();
    }
    let n = series.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(w);
            let hi = (i + w + 1).min(n);
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Aggregates a per-unit series into buckets of `bucket` consecutive points
/// by summation (e.g. minutes → hours). The final bucket may be partial.
///
/// Returns an empty vector when `bucket == 0`.
pub fn rebin_sum(series: &[f64], bucket: usize) -> Vec<f64> {
    if bucket == 0 {
        return Vec::new();
    }
    series.chunks(bucket).map(|c| c.iter().sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_normalize_cases() {
        assert_eq!(sum_normalize(&[]), None);
        assert_eq!(sum_normalize(&[0.0, 0.0]), None);
        assert_eq!(sum_normalize(&[1.0, -1.0]), None);
        assert_eq!(sum_normalize(&[f64::NAN]), None);
        let n = sum_normalize(&[2.0, 2.0, 4.0]).unwrap();
        assert_eq!(n, vec![0.25, 0.25, 0.5]);
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_normalize_cases() {
        assert_eq!(z_normalize(&[]), None);
        assert_eq!(z_normalize(&[3.0, 3.0]), None);
        let z = z_normalize(&[1.0, 3.0]).unwrap();
        assert!((z[0] + 1.0).abs() < 1e-12);
        assert!((z[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_normalize_cases() {
        assert_eq!(max_normalize(&[]), None);
        assert_eq!(max_normalize(&[0.0]), None);
        let m = max_normalize(&[1.0, 4.0, 2.0]).unwrap();
        assert_eq!(m, vec![0.25, 1.0, 0.5]);
    }

    #[test]
    fn moving_average_edges() {
        let s = [0.0, 0.0, 6.0, 0.0, 0.0];
        let sm = moving_average(&s, 1);
        assert_eq!(sm, vec![0.0, 2.0, 2.0, 2.0, 0.0]);
        assert_eq!(moving_average(&s, 0), s.to_vec());
        assert!(moving_average(&[], 3).is_empty());
    }

    #[test]
    fn moving_average_preserves_constant() {
        let s = [5.0; 10];
        assert_eq!(moving_average(&s, 3), s.to_vec());
    }

    #[test]
    fn rebin_sum_cases() {
        assert_eq!(
            rebin_sum(&[1.0, 2.0, 3.0, 4.0, 5.0], 2),
            vec![3.0, 7.0, 5.0]
        );
        assert_eq!(rebin_sum(&[1.0, 2.0], 0), Vec::<f64>::new());
        assert_eq!(rebin_sum(&[], 3), Vec::<f64>::new());
        assert_eq!(rebin_sum(&[1.0, 2.0, 3.0], 3), vec![6.0]);
    }
}
