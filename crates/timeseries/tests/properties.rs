//! Property-based tests for `oat-timeseries` invariants.

use oat_timeseries::{
    distance::{euclidean, pairwise_matrix, pairwise_matrix_with_threads},
    dtw::{dtw_distance, dtw_distance_ea, dtw_path},
    hierarchical::{cluster, Linkage},
    medoid::medoid_index,
    normalize::{max_normalize, moving_average, rebin_sum, sum_normalize},
    prune::{lb_keogh, lb_kim, Envelope},
    CondensedMatrix, Metric,
};
use proptest::prelude::*;

fn series_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..100.0, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dtw_identity(a in series_strategy(30)) {
        prop_assert_eq!(dtw_distance(&a, &a, None), 0.0);
    }

    #[test]
    fn dtw_symmetry(a in series_strategy(25), b in series_strategy(25)) {
        let d1 = dtw_distance(&a, &b, None);
        let d2 = dtw_distance(&b, &a, None);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn dtw_nonnegative_and_finite(a in series_strategy(25), b in series_strategy(25)) {
        let d = dtw_distance(&a, &b, None);
        prop_assert!(d >= 0.0);
        prop_assert!(d.is_finite());
    }

    #[test]
    fn dtw_band_never_below_unconstrained(a in series_strategy(20), b in series_strategy(20),
                                          w in 0usize..10) {
        let full = dtw_distance(&a, &b, None);
        let banded = dtw_distance(&a, &b, Some(w));
        prop_assert!(banded >= full - 1e-9);
    }

    #[test]
    fn dtw_at_most_euclidean_same_len(a in series_strategy(25)) {
        let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
        let d = dtw_distance(&a, &b, None);
        prop_assert!(d <= euclidean(&a, &b) + 1e-9);
    }

    #[test]
    fn dtw_path_matches_distance(a in series_strategy(15), b in series_strategy(15)) {
        let (d_path, path) = dtw_path(&a, &b).unwrap();
        let d = dtw_distance(&a, &b, None);
        prop_assert!((d_path - d).abs() < 1e-9);
        prop_assert_eq!(*path.first().unwrap(), (0, 0));
        prop_assert_eq!(*path.last().unwrap(), (a.len() - 1, b.len() - 1));
        // Path cost re-accumulates to the distance.
        let cost: f64 = path.iter().map(|&(i, j)| (a[i] - b[j]).powi(2)).sum();
        prop_assert!((cost.sqrt() - d).abs() < 1e-9);
    }

    #[test]
    fn dendrogram_structure_valid(series in prop::collection::vec(series_strategy(8), 2..12)) {
        // Pad to a common length so Euclidean is meaningful.
        let max_len = series.iter().map(Vec::len).max().unwrap();
        let series: Vec<Vec<f64>> = series
            .into_iter()
            .map(|mut s| { s.resize(max_len, 0.0); s })
            .collect();
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average, Linkage::Ward] {
            let d = cluster(&m, linkage);
            let n = series.len();
            prop_assert_eq!(d.merges().len(), n - 1);
            prop_assert_eq!(d.merges().last().unwrap().size, n);
            // Node ids referenced by each merge are below the merge's own id.
            for (k, mg) in d.merges().iter().enumerate() {
                prop_assert!(mg.left < n + k);
                prop_assert!(mg.right < n + k);
                prop_assert!(mg.left != mg.right);
                prop_assert!(mg.distance >= 0.0);
            }
            // Distances ascend.
            for w in d.merges().windows(2) {
                prop_assert!(w[0].distance <= w[1].distance + 1e-9);
            }
            // Every k-cut yields exactly k clusters.
            for k in 1..=n {
                let labels = d.cut_k(k);
                let distinct: std::collections::HashSet<_> = labels.iter().collect();
                prop_assert_eq!(distinct.len(), k);
            }
        }
    }

    #[test]
    fn cut_at_distance_monotone(series in prop::collection::vec(series_strategy(6), 2..10)) {
        let max_len = series.iter().map(Vec::len).max().unwrap();
        let series: Vec<Vec<f64>> = series
            .into_iter()
            .map(|mut s| { s.resize(max_len, 0.0); s })
            .collect();
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        let d = cluster(&m, Linkage::Average);
        let mut prev_clusters = usize::MAX;
        for t in [0.0, 1.0, 10.0, 100.0, 1e6] {
            let labels = d.cut_at_distance(t);
            let k = labels.iter().collect::<std::collections::HashSet<_>>().len();
            prop_assert!(k <= prev_clusters, "raising threshold cannot split clusters");
            prev_clusters = k;
        }
    }

    #[test]
    fn medoid_minimizes_distance_sum(series in prop::collection::vec(series_strategy(6), 2..10)) {
        let max_len = series.iter().map(Vec::len).max().unwrap();
        let series: Vec<Vec<f64>> = series
            .into_iter()
            .map(|mut s| { s.resize(max_len, 0.0); s })
            .collect();
        let m = pairwise_matrix(&series, Metric::Euclidean).unwrap();
        let members: Vec<usize> = (0..series.len()).collect();
        let pos = medoid_index(&m, &members).unwrap();
        let medoid_sum: f64 = members.iter().map(|&j| m.get(members[pos], j)).sum();
        for &i in &members {
            let s: f64 = members.iter().map(|&j| m.get(i, j)).sum();
            prop_assert!(medoid_sum <= s + 1e-9);
        }
    }

    #[test]
    fn sum_normalize_sums_to_one(s in prop::collection::vec(0.0f64..1e6, 1..100)) {
        if let Some(n) = sum_normalize(&s) {
            prop_assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(n.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn max_normalize_bounded(s in prop::collection::vec(0.0f64..1e6, 1..100)) {
        if let Some(n) = max_normalize(&s) {
            prop_assert!(n.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
            prop_assert!(n.iter().any(|&x| (x - 1.0).abs() < 1e-12));
        }
    }

    #[test]
    fn moving_average_preserves_mean_bounds(s in series_strategy(50), w in 0usize..5) {
        let sm = moving_average(&s, w);
        prop_assert_eq!(sm.len(), s.len());
        let lo = s.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &x in &sm {
            prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9);
        }
    }

    #[test]
    fn rebin_sum_conserves_mass(s in series_strategy(100), bucket in 1usize..20) {
        let rb = rebin_sum(&s, bucket);
        let total: f64 = s.iter().sum();
        let rb_total: f64 = rb.iter().sum();
        prop_assert!((total - rb_total).abs() < 1e-6);
        prop_assert_eq!(rb.len(), s.len().div_ceil(bucket));
    }

    #[test]
    fn lower_bound_chain_admissible(a in series_strategy(30), b in series_strategy(30),
                                    w in prop::option::of(0usize..12)) {
        // Force equal lengths: the bounds are only nontrivial there.
        let len = a.len().min(b.len());
        let (a, b) = (&a[..len], &b[..len]);
        let env = Envelope::new(b, w);
        let kim = lb_kim(a, &env);
        let keogh = lb_keogh(a, &env);
        let full = dtw_distance(a, b, w);
        prop_assert!(kim >= 0.0 && keogh >= 0.0);
        prop_assert!(kim <= keogh + 1e-9, "LB_Kim {kim} > LB_Keogh {keogh}");
        prop_assert!(keogh <= full + 1e-9, "LB_Keogh {keogh} > DTW {full}");
    }

    #[test]
    fn early_abandon_exact_or_infinite(a in series_strategy(25), b in series_strategy(25),
                                       w in prop::option::of(0usize..10),
                                       frac in 0.0f64..2.0) {
        let full = dtw_distance(&a, &b, w);
        let cutoff = full * frac;
        let ea = dtw_distance_ea(&a, &b, w, cutoff);
        // Early abandoning either returns the exact distance (bit-identical)
        // or declares the pair hopeless; it never fabricates a value.
        prop_assert!(ea == full || ea == f64::INFINITY);
        if cutoff > full {
            prop_assert_eq!(ea, full);
        }
    }

    #[test]
    fn parallel_matrix_deterministic(series in prop::collection::vec(series_strategy(12), 2..10),
                                     threads in 1usize..9) {
        let max_len = series.iter().map(Vec::len).max().unwrap();
        let series: Vec<Vec<f64>> = series
            .into_iter()
            .map(|mut s| { s.resize(max_len, 0.0); s })
            .collect();
        let metric = Metric::Dtw { band: Some(3) };
        let serial = pairwise_matrix_with_threads(&series, metric, 1).unwrap();
        let parallel = pairwise_matrix_with_threads(&series, metric, threads).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn condensed_matrix_roundtrip(n in 2usize..15, seed in 0u64..1000) {
        let mut m = CondensedMatrix::zeros(n);
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut expected = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = (s >> 40) as f64;
                m.set(i, j, v);
                expected.push((i, j, v));
            }
        }
        for (i, j, v) in expected {
            prop_assert_eq!(m.get(i, j), v);
            prop_assert_eq!(m.get(j, i), v);
        }
    }
}
