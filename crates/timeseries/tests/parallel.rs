//! Determinism contract of the parallel distance-matrix engine: the
//! condensed buffer is bit-identical no matter how many threads fill it.

use oat_timeseries::distance::{pairwise_matrix, pairwise_matrix_with_threads, Metric};

/// Deterministic pseudo-random series (SplitMix-style), no external deps.
fn series_set(n: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| (0..len).map(|_| next() * 100.0).collect())
        .collect()
}

#[test]
fn parallel_matrix_bit_identical_across_thread_counts() {
    for metric in [
        Metric::Dtw { band: Some(6) },
        Metric::Dtw { band: None },
        Metric::Euclidean,
    ] {
        let series = series_set(40, 48, 0xA11CE);
        let serial = pairwise_matrix_with_threads(&series, metric, 1).expect("n >= 2");
        for threads in [2usize, 8] {
            let parallel = pairwise_matrix_with_threads(&series, metric, threads).expect("n >= 2");
            assert_eq!(
                serial.as_slice(),
                parallel.as_slice(),
                "{metric:?} with {threads} threads must be bit-identical"
            );
        }
        // The default entry point (0 = all cores) is the parallel path.
        let default = pairwise_matrix(&series, metric).expect("n >= 2");
        assert_eq!(serial, default);
    }
}

#[test]
fn parallel_matrix_values_match_metric() {
    let series = series_set(15, 24, 7);
    let m =
        pairwise_matrix_with_threads(&series, Metric::Dtw { band: Some(4) }, 8).expect("n >= 2");
    for i in 0..series.len() {
        for j in (i + 1)..series.len() {
            let want = Metric::Dtw { band: Some(4) }.distance(&series[i], &series[j]);
            assert_eq!(m.get(i, j), want, "entry ({i}, {j})");
        }
    }
}

#[test]
fn parallel_matrix_ragged_series_lengths() {
    // Unequal lengths exercise the band-widening path under parallel fill.
    let mut series = series_set(12, 20, 99);
    for (i, s) in series.iter_mut().enumerate() {
        s.truncate(8 + i);
    }
    let serial =
        pairwise_matrix_with_threads(&series, Metric::Dtw { band: Some(3) }, 1).expect("n >= 2");
    let parallel =
        pairwise_matrix_with_threads(&series, Metric::Dtw { band: Some(3) }, 8).expect("n >= 2");
    assert_eq!(serial.as_slice(), parallel.as_slice());
}

#[test]
fn thread_count_exceeding_pairs_is_safe() {
    let series = series_set(3, 10, 1);
    let m = pairwise_matrix_with_threads(&series, Metric::Euclidean, 64).expect("n >= 2");
    assert_eq!(m.len(), 3);
    assert!(m.get(0, 1) > 0.0);
}
