//! Fast miri subset for the timeseries crate.
//!
//! CI runs this file under `cargo +nightly miri test -p oat-timeseries
//! --test miri_fast` to catch undefined behaviour in the DTW recursion
//! and the condensed-matrix index arithmetic. Series are tiny (miri
//! executes ~1000x slower than native); no files, no threads.

use oat_timeseries::{dtw_distance, dtw_path, lb_keogh, CondensedMatrix, Envelope};

#[test]
fn dtw_distance_identical_series_is_zero() {
    let a = [1.0, 2.0, 3.0, 2.0];
    assert_eq!(dtw_distance(&a, &a, None), 0.0);
}

#[test]
fn dtw_distance_banded_matches_unconstrained_on_short_series() {
    let a = [0.0, 1.0, 2.0];
    let b = [0.0, 2.0, 2.0];
    let unconstrained = dtw_distance(&a, &b, None);
    let banded = dtw_distance(&a, &b, Some(3));
    assert!((unconstrained - banded).abs() < 1e-12);
}

#[test]
fn dtw_path_endpoints_are_corners() {
    let a = [1.0, 5.0, 1.0];
    let b = [1.0, 1.0, 5.0, 1.0];
    let (cost, path) = dtw_path(&a, &b).unwrap();
    assert!(cost >= 0.0);
    assert_eq!(path.first(), Some(&(0, 0)));
    assert_eq!(path.last(), Some(&(a.len() - 1, b.len() - 1)));
}

#[test]
fn lb_keogh_lower_bounds_dtw() {
    let a = [0.0, 1.0, 2.0, 1.0];
    let b = [0.0, 2.0, 1.0, 1.0];
    let envelope = Envelope::new(&b, Some(1));
    assert!(lb_keogh(&a, &envelope) <= dtw_distance(&a, &b, Some(1)) + 1e-12);
}

#[test]
fn condensed_matrix_round_trips() {
    let mut m = CondensedMatrix::zeros(4);
    m.set(0, 3, 2.5);
    m.set(2, 1, 1.5);
    assert_eq!(m.get(3, 0), 2.5);
    assert_eq!(m.get(1, 2), 1.5);
    assert_eq!(m.get(2, 2), 0.0);
    assert_eq!(m.max_distance(), Some(2.5));
}
