//! End-to-end exit-code and crash-recovery tests for the `repro` binary.
//!
//! The documented contract (README "Exit codes"): `0` ok, `1` generic
//! bench/export failure, `2` usage error, `3` RSS cap exceeded, `4` out
//! of disk space, `5` corrupt or mismatched durable state, `130`
//! interrupted. Code `4` needs a genuinely full filesystem and is covered
//! by library-level fault injection (`oat_workload` ENOSPC tests) rather
//! than here.
//!
//! Crash scenarios are seeded deterministically: the interrupted state is
//! produced in-process with `oat_httplog::FailAt` (the same storage-fault
//! seam the library tests use), then the binary is pointed at the wreckage
//! with `--resume` and must finish the job byte-identically.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::Arc;

use oat_httplog::FailAt;
use oat_workload::{
    config_fingerprint, generate_columnar_parallel_with, ParGenOptions, ResumeOptions, TraceConfig,
};

/// Trace shape shared by every test and mirrored on the CLI: small enough
/// to run in well under a second per invocation, large enough for several
/// shards at `ROWS_PER_SHARD`.
const SCALE: f64 = 0.0015;
const CATALOG_SCALE: f64 = 0.01;
const SEED: u64 = 77;
const ROWS_PER_SHARD: usize = 700;

/// The exact `TraceConfig` the binary builds from the mirrored CLI flags
/// (`ExperimentConfig::small()` + `--scale/--catalog-scale/--seed`), so
/// in-process fingerprints match the binary's.
fn trace_config() -> TraceConfig {
    let mut trace = TraceConfig::small();
    trace.scale = SCALE;
    trace.catalog_scale = CATALOG_SCALE;
    trace.seed = SEED;
    trace
}

/// The `ParGenOptions` the binary builds for `bench scale --threads 2`
/// (shard_size / run_rows / merge_fanin all default).
fn par_opts() -> ParGenOptions {
    ParGenOptions {
        threads: 2,
        shard_size: 0,
        run_rows: 0,
        merge_fanin: 0,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oat-repro-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A `repro` invocation with its own working directory (the binary writes
/// `BENCH_scale.json` to the cwd).
fn repro(work: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.current_dir(work);
    cmd
}

/// Adds the canonical `bench scale` flag set mirroring [`trace_config`].
fn bench_args<'a>(cmd: &'a mut Command, spool: &Path) -> &'a mut Command {
    cmd.args([
        "bench",
        "scale",
        "--scale",
        "0.0015",
        "--catalog-scale",
        "0.01",
        "--seed",
        "77",
        "--rows-per-shard",
        "700",
        "--threads",
        "2",
        "--columnar",
    ])
    .arg(spool)
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("run repro binary")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_exit(out: &Output, code: i32, context: &str) {
    assert_eq!(
        out.status.code(),
        Some(code),
        "{context}: expected exit {code}, got {:?}\nstderr:\n{}",
        out.status,
        stderr_of(out)
    );
}

/// Sorted `.col` shard names in a spool directory.
fn shard_names(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("list spool dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .filter(|n| n.ends_with(".col"))
        .collect();
    names.sort();
    names
}

/// Byte-compares every `.col` file of two spool directories.
fn assert_spools_identical(a: &Path, b: &Path) {
    let names = shard_names(a);
    assert_eq!(names, shard_names(b), "shard file lists differ");
    assert!(!names.is_empty(), "no shards produced");
    for name in &names {
        let bytes_a = std::fs::read(a.join(name)).expect("read shard A");
        let bytes_b = std::fs::read(b.join(name)).expect("read shard B");
        assert_eq!(bytes_a, bytes_b, "shard {name} differs");
    }
}

/// Generates a complete reference spool in-process while counting storage
/// ops; returns the op count of an uninterrupted run.
fn generate_reference(dir: &Path) -> u64 {
    let probe = Arc::new(FailAt::new(0)); // k = 0 never fails
    generate_columnar_parallel_with(
        &trace_config(),
        &par_opts(),
        dir,
        "req",
        ROWS_PER_SHARD,
        &ResumeOptions {
            resume: false,
            io: probe.clone(),
        },
    )
    .expect("reference generation");
    probe.ops_seen()
}

/// Crashes an in-process generation at storage op `k`, leaving `dir` in
/// whatever partial state the failure produced.
fn crash_generation_at(dir: &Path, k: u64, enospc: bool) {
    let io = if enospc {
        FailAt::enospc(k)
    } else {
        FailAt::new(k)
    };
    generate_columnar_parallel_with(
        &trace_config(),
        &par_opts(),
        dir,
        "req",
        ROWS_PER_SHARD,
        &ResumeOptions {
            resume: false,
            io: Arc::new(io),
        },
    )
    .expect_err("injected failure must abort the run");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let work = temp_dir("usage");
    let out = run(repro(&work).arg("--definitely-not-a-flag"));
    assert_exit(&out, 2, "unknown flag");
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn crash_resume_produces_byte_identical_spool() {
    let reference = temp_dir("crashref");
    let total_ops = generate_reference(&reference);
    assert!(total_ops > 10, "expected a nontrivial op count");

    // Crash mid-pipeline, then let the binary finish the job.
    let work = temp_dir("crashwork");
    let spool = work.join("spool");
    crash_generation_at(&spool, total_ops / 2, false);
    let out = run(bench_args(&mut repro(&work), &spool).arg("--resume"));
    assert_exit(&out, 0, "resume after mid-pipeline crash");
    assert_spools_identical(&reference, &spool);
    assert!(
        !spool.join(".runs-req").exists(),
        "scratch directory survives a completed resume"
    );
    let manifest = std::fs::read_to_string(spool.join("MANIFEST-req.toml")).expect("manifest");
    assert!(
        manifest.contains("complete = true"),
        "manifest:\n{manifest}"
    );

    // A second run over the finished spool must verify + reuse it.
    let out = run(bench_args(&mut repro(&work), &spool));
    assert_exit(&out, 0, "rerun over completed spool");
    assert!(
        stderr_of(&out).contains("reusing verified columnar spool"),
        "stderr:\n{}",
        stderr_of(&out)
    );

    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn incomplete_spool_is_refused_without_resume() {
    let reference = temp_dir("enospcref");
    let total_ops = generate_reference(&reference);

    // ENOSPC near the end: the run aborts but flushes a partial manifest
    // (`complete = false`), so the spool is recognizably interrupted.
    let work = temp_dir("enospcwork");
    let spool = work.join("spool");
    crash_generation_at(&spool, total_ops.saturating_sub(6).max(1), true);
    let manifest = std::fs::read_to_string(spool.join("MANIFEST-req.toml"))
        .expect("partial manifest flushed on ENOSPC");
    assert!(
        manifest.contains("complete = false"),
        "manifest:\n{manifest}"
    );

    let out = run(bench_args(&mut repro(&work), &spool));
    assert_exit(&out, 5, "incomplete spool without --resume");
    assert!(
        stderr_of(&out).contains("--resume"),
        "refusal must point at --resume; stderr:\n{}",
        stderr_of(&out)
    );

    let out = run(bench_args(&mut repro(&work), &spool).arg("--resume"));
    assert_exit(&out, 0, "resume after simulated ENOSPC");
    assert_spools_identical(&reference, &spool);

    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn corrupt_manifest_exits_5() {
    let work = temp_dir("badmanifest");
    let spool = work.join("spool");
    generate_reference(&spool);
    std::fs::write(spool.join("MANIFEST-req.toml"), "complete = maybe\n?!")
        .expect("scribble manifest");
    let out = run(bench_args(&mut repro(&work), &spool));
    assert_exit(&out, 5, "garbage manifest");
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn corrupt_shard_byte_exits_5() {
    let work = temp_dir("badshard");
    let spool = work.join("spool");
    generate_reference(&spool);
    // Flip one byte in a shard's column data. The footer (and therefore
    // the manifest check) still agrees; the per-column checksum must catch
    // it during replay and the run must refuse the spool, not salvage it.
    let victim = spool.join(&shard_names(&spool)[0]);
    let mut bytes = std::fs::read(&victim).expect("read shard");
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim, bytes).expect("write corrupted shard");
    let out = run(bench_args(&mut repro(&work), &spool));
    assert_exit(&out, 5, "flipped shard byte");
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn analysis_checkpoint_resume_matches_uninterrupted() {
    use oat_cdnsim::{SimConfig, Simulator};
    use oat_core::analyzers::availability::AvailabilityAnalyzer;
    use oat_core::analyzers::popularity::PopularityAnalyzer;
    use oat_core::analyzers::sessions::SessionAnalyzer;
    use oat_core::analyzers::Analyzer as _;
    use oat_core::AnalysisCheckpoint;
    use oat_httplog::{ColumnarDirReader, Request};

    // Baseline: one uninterrupted binary run (records the analysis
    // summary line and the JSON record count).
    let work_a = temp_dir("ckptbase");
    let spool = work_a.join("spool");
    let out = run(bench_args(&mut repro(&work_a), &spool));
    assert_exit(&out, 0, "baseline run");
    let baseline_summary = summary_line(&stderr_of(&out));
    let baseline_json = std::fs::read_to_string(work_a.join("BENCH_scale.json")).expect("json");
    let baseline_records = json_field(&baseline_json, "records");

    // Fold the first half of the shards in-process — exactly the state the
    // binary would have checkpointed — and write it as `CHECKPOINT-req`.
    let trace = trace_config();
    let fingerprint = config_fingerprint(&trace);
    let map = oat_core::SiteMap::from_profiles(&trace.sites);
    let reader = ColumnarDirReader::<Request>::open(&spool, "req").expect("open spool");
    let shards = reader.shards();
    assert!(shards >= 2, "need at least two shards, got {shards}");
    let split = shards / 2;
    let mut sim_config = SimConfig::default_edge();
    sim_config.cache_capacity_bytes = (64e9 * CATALOG_SCALE).max(2e9) as u64;
    let simulator = Simulator::new(&sim_config);
    let mut popularity = PopularityAnalyzer::new(map.clone());
    let mut sessions = SessionAnalyzer::new(map.clone());
    let mut availability = AvailabilityAnalyzer::new(map.clone());
    let mut rows_done = 0u64;
    for path in &reader.paths()[..split] {
        let shard = oat_httplog::ColumnarShard::open_expecting(path, oat_httplog::Schema::Request)
            .expect("open shard");
        let mut batch: Vec<Request> = Vec::new();
        shard
            .read_rows(0..shard.rows(), &mut batch)
            .expect("read shard");
        let records = simulator.replay(batch);
        rows_done += records.len() as u64;
        popularity.observe_batch(&records);
        sessions.observe_batch(&records);
        availability.observe_batch(&records);
    }
    let mut cp = AnalysisCheckpoint::new(fingerprint);
    cp.shards_done = split as u64;
    cp.rows_done = rows_done;
    cp.set_section("popularity", popularity.checkpoint_state());
    cp.set_section("sessions", sessions.checkpoint_state());
    cp.set_section("availability", availability.checkpoint_state());
    let ckpt_path = spool.join("CHECKPOINT-req");
    std::fs::write(&ckpt_path, cp.to_text()).expect("write checkpoint");

    // Resume from the checkpoint: analysis restarts at the split shard and
    // reaches the same result as the uninterrupted baseline.
    let out = run(bench_args(&mut repro(&work_a), &spool).arg("--resume"));
    assert_exit(&out, 0, "checkpoint resume");
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains(&format!("resuming analysis at shard {split}")),
        "stderr:\n{stderr}"
    );
    assert_eq!(summary_line(&stderr), baseline_summary);
    let resumed_json = std::fs::read_to_string(work_a.join("BENCH_scale.json")).expect("json");
    assert_eq!(json_field(&resumed_json, "records"), baseline_records);
    assert!(
        !ckpt_path.exists(),
        "checkpoint must be removed after a finished run"
    );

    // A damaged checkpoint is corruption, not a silent fresh start.
    let mut text = cp.to_text().into_bytes();
    let mid = text.len() / 2;
    text[mid] ^= 0x01;
    std::fs::write(&ckpt_path, text).expect("write damaged checkpoint");
    let out = run(bench_args(&mut repro(&work_a), &spool).arg("--resume"));
    assert_exit(&out, 5, "damaged checkpoint");

    let _ = std::fs::remove_dir_all(&work_a);
}

/// The deterministic analysis summary line from a bench-scale stderr.
fn summary_line(stderr: &str) -> String {
    stderr
        .lines()
        .find(|l| l.contains("popularity series"))
        .unwrap_or_else(|| panic!("no summary line in stderr:\n{stderr}"))
        .to_string()
}

/// Extracts an integer field from the flat `BENCH_scale.json`.
fn json_field(json: &str, key: &str) -> u64 {
    let tag = format!("\"{key}\": ");
    let start = json
        .find(&tag)
        .unwrap_or_else(|| panic!("no {key} in {json}"))
        + tag.len();
    json[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {key} in {json}"))
}

#[test]
fn rss_cap_exit_is_3() {
    let work = temp_dir("rsscap");
    let spool = work.join("spool");
    let out = run(bench_args(&mut repro(&work), &spool).args(["--max-rss-mb", "1"]));
    assert_exit(&out, 3, "1 MiB RSS cap");
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
#[cfg(unix)]
fn sigint_exits_130() {
    let work = temp_dir("sigint");
    let spool = work.join("spool");
    // A run long enough that SIGINT lands while it is still working; the
    // handler defers to the next phase boundary and exits 130.
    let mut child = repro(&work)
        .args([
            "bench",
            "scale",
            "--scale",
            "0.02",
            "--catalog-scale",
            "0.04",
            "--threads",
            "2",
            "--columnar",
        ])
        .arg(&spool)
        .spawn()
        .expect("spawn repro");
    std::thread::sleep(std::time::Duration::from_millis(300));
    let _ = Command::new("sh")
        .arg("-c")
        .arg(format!("kill -INT {}", child.id()))
        .status()
        .expect("send SIGINT");
    let status = child.wait().expect("wait for repro");
    assert_eq!(status.code(), Some(130), "got {status:?}");
    let _ = std::fs::remove_dir_all(&work);
}
