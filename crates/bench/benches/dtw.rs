//! DTW and hierarchical-clustering scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oat_timeseries::{
    distance::{pairwise_matrix, pairwise_matrix_with_threads},
    dtw::dtw_distance,
    hierarchical, kmedoids,
    prune::{nearest_neighbor, Envelope, PruneStats},
    Linkage, Metric,
};

fn series(len: usize, phase: f64) -> Vec<f64> {
    (0..len)
        .map(|i| (i as f64 * 0.26 + phase).sin().abs() * (1.0 + (i % 7) as f64 * 0.1))
        .collect()
}

fn bench_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw/distance");
    group.sample_size(20);
    for len in [168usize, 336, 672] {
        let a = series(len, 0.0);
        let b = series(len, 1.3);
        group.bench_with_input(BenchmarkId::new("unconstrained", len), &len, |bench, _| {
            bench.iter(|| dtw_distance(&a, &b, None))
        });
        group.bench_with_input(BenchmarkId::new("band24", len), &len, |bench, _| {
            bench.iter(|| dtw_distance(&a, &b, Some(24)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dtw/cluster_pipeline");
    group.sample_size(10);
    for n in [50usize, 100, 150] {
        let set: Vec<Vec<f64>> = (0..n).map(|i| series(168, i as f64 * 0.37)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |bench, set| {
            bench.iter(|| {
                let m = pairwise_matrix(set, Metric::Dtw { band: Some(24) }).expect("n >= 2");
                hierarchical::cluster(&m, Linkage::Ward)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dtw/pairwise_matrix");
    group.sample_size(10);
    for n in [100usize, 500] {
        let set: Vec<Vec<f64>> = (0..n).map(|i| series(168, i as f64 * 0.37)).collect();
        for threads in [1usize, 8] {
            let id = BenchmarkId::new(format!("threads{threads}"), n);
            group.bench_with_input(id, &set, |bench, set| {
                bench.iter(|| {
                    pairwise_matrix_with_threads(set, Metric::Dtw { band: Some(24) }, threads)
                        .expect("n >= 2")
                })
            });
        }
    }
    group.finish();

    report_prune_rates();

    let mut group = c.benchmark_group("kmedoids");
    group.sample_size(10);
    let set: Vec<Vec<f64>> = (0..100).map(|i| series(168, i as f64 * 0.37)).collect();
    let matrix = pairwise_matrix(&set, Metric::Euclidean).expect("n >= 2");
    group.bench_function("pam_k5_100", |b| {
        b.iter(|| kmedoids::pam(&matrix, 5, 20).expect("valid k"))
    });
    let labels = kmedoids::pam(&matrix, 5, 20).expect("valid k").labels;
    group.bench_function("silhouette_100", |b| {
        b.iter(|| kmedoids::silhouette(&matrix, &labels))
    });
    group.finish();
}

/// Prints how much work the UCR-style lower-bound cascade avoids on a
/// 1-NN self-join (every series queried against all the others) — the
/// access pattern of medoid refinement and k-medoids assignment, where
/// only the argmin matters and pruning is admissible.
fn report_prune_rates() {
    println!("\nlower-bound prune rates (1-NN self-join, len 168, band 24):");
    for n in [100usize, 500, 2000] {
        let set: Vec<Vec<f64>> = (0..n).map(|i| series(168, i as f64 * 0.37)).collect();
        let envelopes: Vec<Envelope> = set.iter().map(|s| Envelope::new(s, Some(24))).collect();
        let mut stats = PruneStats::default();
        for (i, query) in set.iter().enumerate() {
            let _ = nearest_neighbor(query, &set, &envelopes, Some(24), Some(i), &mut stats);
        }
        println!("  n={n:>5}: {stats}");
    }
    println!();
}

criterion_group!(benches, bench_dtw);
criterion_main!(benches);
