//! Degraded-path replay throughput: the fault-injection layer's overhead
//! over a healthy replay, on the same synthesized trace.
//!
//! Three points: the healthy baseline, an attached-but-empty plan (the
//! fault clock is consulted and finds nothing), and a sampled
//! exercise-everything plan (failover + stale serves + shedding +
//! pressure). Fixed seeds throughout — every iteration replays the
//! identical degraded schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oat_cdnsim::{FaultPlan, SimConfig, Simulator};
use oat_workload::{generate, TraceConfig};

const TRACE_SEED: u64 = 0x0A7_5EED;
const PLAN_SEED: u64 = 0xC4A0_5EED;

fn bench_faulted_replay(c: &mut Criterion) {
    let config = TraceConfig::small()
        .with_scale(0.02)
        .with_catalog_scale(0.05)
        .with_seed(TRACE_SEED);
    let trace = generate(&config).expect("valid config");
    let sim_config = SimConfig::default_edge();
    let pops = (sim_config.pops_per_region * 4) as u16;
    let sampled =
        FaultPlan::sample(PLAN_SEED, config.duration_secs, pops).shifted(config.start_unix);
    let empty = FaultPlan::new(PLAN_SEED);

    let mut group = c.benchmark_group("chaos/replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.requests.len() as u64));
    let cases: [(&str, Option<&FaultPlan>); 3] = [
        ("healthy", None),
        ("empty_plan", Some(&empty)),
        ("sampled_plan", Some(&sampled)),
    ];
    for (label, plan) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(label), &plan, |b, plan| {
            b.iter(|| {
                let mut sim = Simulator::new(&sim_config);
                if let Some(plan) = plan {
                    sim = sim.with_faults((*plan).clone());
                }
                let records = sim.replay(trace.requests.clone());
                (records.len(), sim.stats().shed)
            })
        });
    }
    group.finish();
}

fn bench_fault_clock(c: &mut Criterion) {
    let plan = FaultPlan::sample(PLAN_SEED, 604_800, 16);
    let clock = oat_cdnsim::FaultClock::new(plan);
    let mut group = c.benchmark_group("chaos/clock");
    group.bench_function("origin_fetch", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(37) % 604_800;
            clock.origin_fetch(t, t.wrapping_mul(0x9e37_79b9))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_faulted_replay, bench_fault_clock);
criterion_main!(benches);
