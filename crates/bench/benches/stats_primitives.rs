//! Micro-benchmarks for the statistics primitives.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oat_stats::{fit_zipf, Ecdf, PsquareQuantile, SpaceSaving, StreamingStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_stats(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let samples: Vec<f64> = (0..100_000).map(|_| rng.gen_range(0.0..1e6)).collect();
    let counts: Vec<u64> = (1..=5_000u64).map(|r| 1_000_000 / r).collect();

    let mut group = c.benchmark_group("stats");
    group.sample_size(20);
    group.throughput(Throughput::Elements(samples.len() as u64));
    group.bench_function("ecdf_build_100k", |b| {
        b.iter(|| Ecdf::from_samples(samples.iter().copied()))
    });
    group.bench_function("streaming_stats_100k", |b| {
        b.iter(|| samples.iter().copied().collect::<StreamingStats>())
    });
    group.bench_function("psquare_median_100k", |b| {
        b.iter(|| {
            let mut p = PsquareQuantile::new(0.5).expect("valid q");
            for &x in &samples {
                p.push(x);
            }
            p.estimate()
        })
    });
    group.bench_function("space_saving_100k", |b| {
        b.iter(|| {
            let mut ss = SpaceSaving::new(256);
            for &x in &samples {
                ss.observe((x as u64) % 10_000);
            }
            ss.top(10)
        })
    });
    group.finish();

    c.bench_function("stats/zipf_fit_5k_ranks", |b| b.iter(|| fit_zipf(&counts)));
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
