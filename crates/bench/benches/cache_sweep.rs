//! Configuration-grid sweep throughput: the single-pass sweep engine
//! against the K-independent-replay baseline it replaced, plus the
//! counters-only `replay_stats` fast path against record-producing
//! `replay`.
//!
//! The baseline mirrors the old ablation loop exactly: one fresh
//! `Simulator` per grid point, a full `trace.requests.clone()` per point,
//! and the returned records thrown away.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oat_cdnsim::{PolicyKind, SimConfig, Simulator, Sweep};
use oat_httplog::{ObjectId, Region, Request, RequestKind, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn zipf_trace(n_ops: usize, n_keys: usize, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_ops)
        .map(|t| {
            // Approximate Zipf(1) by inverse-power transform.
            let u: f64 = rng.gen_range(0.0001f64..1.0);
            let rank = ((n_keys as f64).powf(u) as u64).min(n_keys as u64 - 1);
            Request {
                timestamp: t as u64,
                object: ObjectId::new(rank),
                object_size: 1_000 + (rank % 64) * 500,
                user: UserId::new(rng.gen_range(0..5_000u64)),
                region: Region::ALL[(rank % 4) as usize],
                kind: RequestKind::Full,
                ..Request::example()
            }
        })
        .collect()
}

/// A K-point LRU capacity grid — the shape of the A1/A5 ablations.
fn capacity_grid(k: usize) -> Vec<SimConfig> {
    (1..=k)
        .map(|i| SimConfig::default_edge().with_capacity(i as u64 * 2_000_000))
        .collect()
}

fn bench_grid_sweep(c: &mut Criterion) {
    let trace = zipf_trace(100_000, 10_000, 42);
    let mut group = c.benchmark_group("sweep/capacity_grid");
    group.sample_size(10);
    for k in [4usize, 16] {
        let grid = capacity_grid(k);
        group.throughput(Throughput::Elements((trace.len() * k) as u64));
        // Baseline: K independent replays, each cloning the trace —
        // the pre-sweep ablation loop.
        group.bench_with_input(
            BenchmarkId::new("replay_per_config", k),
            &grid,
            |b, grid| {
                b.iter(|| {
                    let mut ratios = Vec::with_capacity(grid.len());
                    for config in grid {
                        let sim = Simulator::new(config);
                        sim.replay(trace.clone());
                        ratios.push(sim.stats().hit_ratio());
                    }
                    ratios
                })
            },
        );
        // The sweep engine: shared trace, one routing pass, one Mattson
        // stack pass answering every LRU capacity.
        group.bench_with_input(BenchmarkId::new("sweep_engine", k), &grid, |b, grid| {
            b.iter(|| {
                Sweep::new(&trace)
                    .run(grid)
                    .iter()
                    .map(|r| r.stats.hit_ratio())
                    .collect::<Vec<_>>()
            })
        });
        // Replay-only grids (no Mattson shortcut): same engine, FIFO
        // points, isolating the shared-partition + counters-only win.
        let fifo_grid: Vec<SimConfig> = grid
            .iter()
            .map(|c| c.clone().with_policy(PolicyKind::Fifo))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("sweep_engine_fifo", k),
            &fifo_grid,
            |b, grid| {
                b.iter(|| {
                    Sweep::new(&trace)
                        .run(grid)
                        .iter()
                        .map(|r| r.stats.hit_ratio())
                        .collect::<Vec<_>>()
                })
            },
        );
    }
    group.finish();
}

fn bench_replay_stats(c: &mut Criterion) {
    let trace = zipf_trace(100_000, 10_000, 7);
    let config = SimConfig::default_edge().with_capacity(8_000_000);
    let mut group = c.benchmark_group("sweep/replay_vs_replay_stats");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("replay_records", |b| {
        b.iter(|| {
            let sim = Simulator::new(&config);
            let records = sim.replay(trace.clone());
            (records.len(), sim.stats().hit_ratio())
        })
    });
    group.bench_function("replay_stats", |b| {
        b.iter(|| {
            let sim = Simulator::new(&config);
            sim.replay_stats(&trace).hit_ratio()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_grid_sweep, bench_replay_stats);
criterion_main!(benches);
