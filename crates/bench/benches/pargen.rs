//! Direct-to-columnar generation throughput: the serial single-writer path
//! vs. the parallel run-then-merge engine at 2, 4, and 8 worker threads.
//!
//! Both paths produce byte-identical spools (see the `pargen` unit tests and
//! the `parallel_columnar_identical_to_serial` property test), so the only
//! axis measured here is records/s into a finished, sorted, time-partitioned
//! spool directory. On a multi-core runner the parallel rows should scale
//! until phase 3's merge fan-out saturates; on a single core they bound the
//! run-file overhead the engine pays for its parallelism. Peak RSS is outside
//! criterion's scope: check it with `repro bench scale --max-rss-mb N`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oat_workload::{
    generate_columnar, generate_columnar_parallel, GenOptions, ParGenOptions, TraceConfig,
};

fn bench_pargen(c: &mut Criterion) {
    let config = TraceConfig::paper_week()
        .with_scale(0.01)
        .with_catalog_scale(0.02);
    let dir = std::env::temp_dir().join(format!("oat-bench-pargen-{}", std::process::id()));
    let rows_per_shard = 1 << 20;

    // Size the throughput denominator with one warm-up generation.
    let _ = std::fs::remove_dir_all(&dir);
    let n = generate_columnar(
        &config,
        &GenOptions {
            threads: 1,
            shard_size: 64,
        },
        0,
        &dir,
        "req",
        rows_per_shard,
    )
    .expect("valid config")
    .rows;

    let mut group = c.benchmark_group("pargen");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));

    group.bench_function("generate_serial_1pct_week", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            generate_columnar(
                &config,
                &GenOptions {
                    threads: 1,
                    shard_size: 64,
                },
                0,
                &dir,
                "req",
                rows_per_shard,
            )
            .expect("generate")
            .rows
        })
    });

    for threads in [2usize, 4, 8] {
        let opts = ParGenOptions {
            threads,
            shard_size: 64,
            run_rows: 0,
            merge_fanin: 0,
        };
        group.bench_function(format!("generate_parallel_{threads}t_1pct_week"), |b| {
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&dir);
                generate_columnar_parallel(&config, &opts, &dir, "req", rows_per_shard)
                    .expect("generate")
                    .rows
            })
        });
    }

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_pargen);
criterion_main!(benches);
