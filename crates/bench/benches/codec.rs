//! Log codec throughput: text vs binary encode/decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oat_httplog::codec::{binary, text};
use oat_httplog::io::{read_all, write_all, Format};
use oat_httplog::LogRecord;

fn sample_records(n: usize) -> Vec<LogRecord> {
    (0..n)
        .map(|i| {
            let mut r = LogRecord::example();
            r.timestamp += i as u64;
            r.object = oat_httplog::ObjectId::new(i as u64 * 7919);
            r
        })
        .collect()
}

fn bench_codecs(c: &mut Criterion) {
    let records = sample_records(10_000);

    let mut group = c.benchmark_group("codec/encode");
    group.sample_size(20);
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("text", |b| {
        b.iter(|| {
            let mut out = String::new();
            for r in &records {
                text::encode_into(r, &mut out);
                out.push('\n');
            }
            out
        })
    });
    group.bench_function("binary", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(records.len() * 200);
            for r in &records {
                binary::encode(r, &mut buf).expect("UA fits");
            }
            buf
        })
    });
    group.finish();

    // Decode.
    let mut text_buf = Vec::new();
    write_all(&mut text_buf, Format::Text, &records).unwrap();
    let mut bin_buf = Vec::new();
    write_all(&mut bin_buf, Format::Binary, &records).unwrap();

    let mut group = c.benchmark_group("codec/decode");
    group.sample_size(20);
    group.throughput(Throughput::Elements(records.len() as u64));
    for (name, buf, format) in [
        ("text", &text_buf, Format::Text),
        ("binary", &bin_buf, Format::Binary),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), buf, |b, buf| {
            b.iter(|| read_all(&buf[..], format).expect("well-formed"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
