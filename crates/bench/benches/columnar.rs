//! Out-of-core columnar path throughput: spool write, zone-pruned scan,
//! and bounded-memory replay vs. their in-memory equivalents.
//!
//! The interesting comparison is records/s at constant (bounded) memory:
//! the columnar reader re-reads from disk each pass where the in-memory
//! path folds over a resident `Vec`, so the delta bounds the out-of-core
//! tax paid per multi-pass analyzer. Peak RSS is outside criterion's
//! scope: check it with `repro bench scale --max-rss-mb N`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oat_cdnsim::{SimConfig, Simulator};
use oat_httplog::{ColumnarDirReader, ColumnarDirWriter, Request, ShardFilter};
use oat_workload::{generate_with, GenOptions, TraceConfig};

fn bench_columnar(c: &mut Criterion) {
    let config = TraceConfig::paper_week()
        .with_scale(0.01)
        .with_catalog_scale(0.02);
    let requests = generate_with(&config, &GenOptions::default())
        .expect("valid")
        .requests;
    let n = requests.len() as u64;
    let dir = std::env::temp_dir().join(format!("oat-bench-columnar-{}", std::process::id()));

    let mut group = c.benchmark_group("columnar");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));

    group.bench_function("spool_write_1pct_week", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let mut writer =
                ColumnarDirWriter::<Request>::new(&dir, "req", 1 << 20).expect("create");
            writer.push_batch(&requests).expect("spool");
            writer.finish().expect("finish")
        })
    });

    // One spool for the read-side benches.
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = ColumnarDirWriter::<Request>::new(&dir, "req", 1 << 20).expect("create");
    writer.push_batch(&requests).expect("spool");
    writer.finish().expect("finish");
    let reader = ColumnarDirReader::<Request>::open(&dir, "req").expect("open");

    group.bench_function("scan_full_1pct_week", |b| {
        b.iter(|| {
            let mut rows = 0u64;
            reader
                .scan(&ShardFilter::all(), 0, |batch| rows += batch.len() as u64)
                .expect("scan");
            rows
        })
    });

    let mid = config.start_unix + config.duration_secs / 2;
    group.bench_function("scan_zone_pruned_half_week", |b| {
        b.iter(|| {
            let mut rows = 0u64;
            reader
                .scan(&ShardFilter::all().with_time(mid..u64::MAX), 0, |batch| {
                    rows += batch.len() as u64
                })
                .expect("scan");
            rows
        })
    });

    group.bench_function("replay_columnar_1pct_week", |b| {
        b.iter(|| {
            let sim = Simulator::new(&SimConfig::default_edge());
            let mut records = 0u64;
            sim.replay_columnar(&reader, 0, |batch| records += batch.len() as u64)
                .expect("replay");
            records
        })
    });

    group.bench_function("replay_in_memory_1pct_week", |b| {
        b.iter(|| {
            let sim = Simulator::new(&SimConfig::default_edge());
            sim.replay(requests.clone()).len() as u64
        })
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_columnar);
criterion_main!(benches);
