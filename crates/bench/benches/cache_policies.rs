//! Cache-policy operation throughput under a Zipf-like key stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oat_cdnsim::cache::CacheKey;
use oat_cdnsim::PolicyKind;
use oat_httplog::ObjectId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn zipf_stream(n_ops: usize, n_keys: usize, seed: u64) -> Vec<(CacheKey, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_ops)
        .map(|_| {
            // Approximate Zipf(1) by inverse-power transform.
            let u: f64 = rng.gen_range(0.0001f64..1.0);
            let rank = ((n_keys as f64).powf(u) as u64).min(n_keys as u64 - 1);
            let size = 1_000 + (rank % 64) * 500;
            (CacheKey::whole(ObjectId::new(rank)), size)
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let stream = zipf_stream(200_000, 20_000, 42);
    let mut group = c.benchmark_group("cache/request_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));
    for kind in PolicyKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &stream, |b, stream| {
            b.iter(|| {
                let mut cache = kind.build(20_000_000);
                let mut hits = 0u64;
                for (t, &(key, size)) in stream.iter().enumerate() {
                    hits += u64::from(cache.request(key, size, t as u64));
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
