//! Cache-policy operation throughput under a Zipf-like key stream, and
//! the full policy-comparison grid driven by the sweep engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oat_cdnsim::cache::CacheKey;
use oat_cdnsim::{PolicyKind, SimConfig, Sweep};
use oat_httplog::{ObjectId, Region, Request, RequestKind, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn zipf_stream(n_ops: usize, n_keys: usize, seed: u64) -> Vec<(CacheKey, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_ops)
        .map(|_| {
            // Approximate Zipf(1) by inverse-power transform.
            let u: f64 = rng.gen_range(0.0001f64..1.0);
            let rank = ((n_keys as f64).powf(u) as u64).min(n_keys as u64 - 1);
            let size = 1_000 + (rank % 64) * 500;
            (CacheKey::whole(ObjectId::new(rank)), size)
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let stream = zipf_stream(200_000, 20_000, 42);
    let mut group = c.benchmark_group("cache/request_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));
    for kind in PolicyKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &stream, |b, stream| {
            b.iter(|| {
                let mut cache = kind.build(20_000_000);
                let mut hits = 0u64;
                for (t, &(key, size)) in stream.iter().enumerate() {
                    hits += u64::from(cache.request(key, size, t as u64));
                }
                hits
            })
        });
    }
    group.finish();
}

/// The A1-shaped policy × capacity comparison, evaluated as one sweep
/// over a shared trace instead of one simulator replay per cell.
fn bench_policy_grid(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let n_keys = 10_000usize;
    let trace: Vec<Request> = (0..100_000usize)
        .map(|t| {
            let u: f64 = rng.gen_range(0.0001f64..1.0);
            let rank = ((n_keys as f64).powf(u) as u64).min(n_keys as u64 - 1);
            Request {
                timestamp: t as u64,
                object: ObjectId::new(rank),
                object_size: 1_000 + (rank % 64) * 500,
                user: UserId::new(rng.gen_range(0..5_000u64)),
                region: Region::ALL[(rank % 4) as usize],
                kind: RequestKind::Full,
                ..Request::example()
            }
        })
        .collect();
    let mut grid = Vec::new();
    for capacity in [4_000_000u64, 16_000_000] {
        for policy in PolicyKind::ALL {
            grid.push(
                SimConfig::default_edge()
                    .with_policy(policy)
                    .with_capacity(capacity),
            );
        }
    }
    let mut group = c.benchmark_group("cache/policy_grid_sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements((trace.len() * grid.len()) as u64));
    group.bench_function(BenchmarkId::from_parameter(grid.len()), |b| {
        b.iter(|| {
            Sweep::new(&trace)
                .run(&grid)
                .iter()
                .map(|r| r.stats.hit_ratio())
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policies, bench_policy_grid);
criterion_main!(benches);
