//! Trace-generation and CDN-replay throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oat_cdnsim::{SimConfig, Simulator};
use oat_workload::{generate, TraceConfig};

fn bench_generator(c: &mut Criterion) {
    let config = TraceConfig::paper_week()
        .with_scale(0.01)
        .with_catalog_scale(0.02);
    let n_requests = generate(&config).expect("valid").requests.len();

    let mut group = c.benchmark_group("workload");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_requests as u64));
    group.bench_function("generate_1pct_week", |b| {
        b.iter(|| generate(&config).expect("valid"))
    });
    group.finish();

    let trace = generate(&config).expect("valid");
    let mut group = c.benchmark_group("cdnsim");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.requests.len() as u64));
    group.bench_function("replay_1pct_week", |b| {
        b.iter(|| {
            let sim = Simulator::new(&SimConfig::default_edge());
            sim.replay(trace.requests.clone())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generator);
criterion_main!(benches);
