//! Sharded-generation throughput: serial vs. sharded at 1/2/8 worker
//! threads, plus the streaming drain path.
//!
//! Every variant produces a byte-identical trace — the comparison is pure
//! records/s. Peak RSS is outside criterion's scope: check it with
//! `/usr/bin/time -v repro --all` vs `repro --all --stream`; the streaming
//! path retains one record-set copy where the batch path holds the trace,
//! the replay output, and the analyzer slices (~2x) simultaneously.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oat_workload::{generate_streaming, generate_with, GenOptions, TraceConfig};

fn bench_generate(c: &mut Criterion) {
    let config = TraceConfig::paper_week()
        .with_scale(0.01)
        .with_catalog_scale(0.02);
    let serial = GenOptions {
        threads: 1,
        shard_size: usize::MAX, // one shard per site ≈ the old serial path
    };
    let n_requests = generate_with(&config, &serial)
        .expect("valid")
        .requests
        .len() as u64;

    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_requests));
    group.bench_function("serial_1pct_week", |b| {
        b.iter(|| generate_with(&config, &serial).expect("valid"))
    });
    for threads in [1usize, 2, 8] {
        let opts = GenOptions {
            threads,
            shard_size: 0,
        };
        group.bench_with_input(
            BenchmarkId::new("sharded_1pct_week", threads),
            &opts,
            |b, opts| b.iter(|| generate_with(&config, opts).expect("valid")),
        );
    }
    group.bench_function("streaming_drain_1pct_week", |b| {
        b.iter(|| {
            let stream = generate_streaming(&config, &GenOptions::default(), 0).expect("valid");
            let mut total = 0usize;
            for batch in stream.batches.iter() {
                total += batch.len();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generate);
criterion_main!(benches);
