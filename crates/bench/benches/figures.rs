//! One benchmark per paper figure: times regenerating each figure's data
//! from a shared pre-simulated record stream (the per-table/figure bench
//! targets promised in DESIGN.md).

use criterion::{criterion_group, criterion_main, Criterion};
use oat_core::analyzers::{
    addiction::AddictionAnalyzer,
    aging::AgingAnalyzer,
    cache::CacheAnalyzer,
    clustering::{ClusteringAnalyzer, ClusteringConfig},
    composition::CompositionAnalyzer,
    device::DeviceAnalyzer,
    iat::IatAnalyzer,
    popularity::PopularityAnalyzer,
    response::ResponseAnalyzer,
    run_analyzer,
    sessions::SessionAnalyzer,
    sizes::SizeAnalyzer,
    temporal::TemporalAnalyzer,
};
use oat_core::SiteMap;
use oat_httplog::{ContentClass, LogRecord, PublisherId};

fn fixture() -> (Vec<LogRecord>, SiteMap, u64) {
    let (records, _sim, trace) = oat_bench::records(0.01, 0.02, 7);
    let map = SiteMap::from_profiles(&trace.config.sites);
    (records, map, trace.config.start_unix)
}

fn bench_figures(c: &mut Criterion) {
    let (records, map, start) = fixture();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig01_02_composition", |b| {
        b.iter(|| run_analyzer(CompositionAnalyzer::new(map.clone()), &records))
    });
    group.bench_function("fig03_temporal", |b| {
        b.iter(|| run_analyzer(TemporalAnalyzer::new(map.clone()), &records))
    });
    group.bench_function("fig04_devices", |b| {
        b.iter(|| run_analyzer(DeviceAnalyzer::new(map.clone()), &records))
    });
    group.bench_function("fig05_sizes", |b| {
        b.iter(|| run_analyzer(SizeAnalyzer::new(map.clone()), &records))
    });
    group.bench_function("fig06_popularity", |b| {
        b.iter(|| run_analyzer(PopularityAnalyzer::new(map.clone()), &records))
    });
    group.bench_function("fig07_aging", |b| {
        b.iter(|| run_analyzer(AgingAnalyzer::new(map.clone(), 7), &records))
    });
    group.bench_function("fig08_10_clustering_v2", |b| {
        b.iter(|| {
            run_analyzer(
                ClusteringAnalyzer::new(
                    PublisherId::new(2),
                    "V-2",
                    ContentClass::Video,
                    start,
                    168,
                    ClusteringConfig::default(),
                ),
                &records,
            )
        })
    });
    group.bench_function("fig11_iat", |b| {
        b.iter(|| run_analyzer(IatAnalyzer::new(map.clone()), &records))
    });
    group.bench_function("fig12_sessions", |b| {
        b.iter(|| run_analyzer(SessionAnalyzer::new(map.clone()), &records))
    });
    group.bench_function("fig13_14_addiction", |b| {
        b.iter(|| run_analyzer(AddictionAnalyzer::new(map.clone()), &records))
    });
    group.bench_function("fig15_cache", |b| {
        b.iter(|| run_analyzer(CacheAnalyzer::new(map.clone()), &records))
    });
    group.bench_function("fig16_responses", |b| {
        b.iter(|| run_analyzer(ResponseAnalyzer::new(map.clone()), &records))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
