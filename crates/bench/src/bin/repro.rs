//! `repro` — regenerates every table/figure of the ICDCS 2016 paper and
//! runs the design ablations.
//!
//! ```sh
//! repro --all                 # all 16 figures, default scale
//! repro --fig 3               # one figure
//! repro --ablation cache-policy|tiered-cache|push|incognito|ttl|dtw
//! repro --scale 0.25 --all    # denser trace (closer to paper shape)
//! repro --faults plan.toml    # degraded run under a fault plan
//! repro --fault-seed 7        # degraded run under a sampled plan
//! ```
//!
//! Each section prints the paper's reported shape next to the measured
//! values so the comparison that feeds `EXPERIMENTS.md` is mechanical.
//!
//! Exit codes (documented in README.md "Exit codes"): `0` success; `1`
//! export/bench failure; `2` usage error; `3` peak RSS exceeded
//! `--max-rss-mb`; `4` out of disk space (ENOSPC — a partial spool
//! manifest is flushed so `--resume` can pick up after space is freed);
//! `5` corrupt or mismatched spool state (manifest/checkpoint fails
//! verification); `130` interrupted (Ctrl-C — the report produced so far
//! is flushed first); killed by `SIGPIPE` when stdout's reader goes away
//! (e.g. `repro | head`), as is conventional for pipeline tools.

use oat_cdnsim::cache::{CachePolicy, LruCache, SlruCache, TieredCache};
use oat_cdnsim::{
    cacheable_key, plan_push, FaultPlan, LatencyModel, PolicyKind, SimConfig, Simulator, Sweep,
    SweepResult,
};
use oat_core::experiment::{ExperimentConfig, ExperimentResult, StreamOptions};
use oat_core::report;
use oat_httplog::{ContentClass, HttpStatus};
use oat_timeseries::{distance::pairwise_matrix, hierarchical, Linkage, Metric};
use oat_workload::{generate, SiteProfile, TraceConfig};

/// Minimal signal handling, dependency-free: Ctrl-C sets a flag that the
/// figure loop polls so a partial report can be flushed before exiting
/// with the conventional `130`; `SIGPIPE` is restored to its default
/// disposition so a closed stdout pipe (`repro | head`) terminates the
/// process quietly instead of panicking a `println!`.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGPIPE: i32 = 13;

    extern "C" {
        // POSIX signal(2). `Option<extern "C" fn>` has the null-pointer
        // layout guarantee, so `None` is `SIG_DFL` (0 on Linux).
        fn signal(signum: i32, handler: Option<extern "C" fn(i32)>) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, Some(on_sigint));
            signal(SIGPIPE, None);
        }
    }

    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn interrupted() -> bool {
        false
    }
}

/// Flushes stdout and exits `130` if Ctrl-C arrived; called between
/// report phases so a long run always leaves a readable partial report.
fn checkpoint_interrupt() {
    if sig::interrupted() {
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        eprintln!("repro: interrupted — partial report flushed");
        std::process::exit(130);
    }
}

#[derive(Debug, Clone)]
struct Options {
    scale: f64,
    catalog_scale: f64,
    seed: u64,
    figures: Vec<u8>,
    all: bool,
    ablation: Option<String>,
    capacity: Option<u64>,
    csv_dir: Option<std::path::PathBuf>,
    threads: usize,
    stream: bool,
    shard_size: usize,
    sweep_threads: usize,
    faults: Option<std::path::PathBuf>,
    fault_seed: Option<u64>,
    columnar: Option<std::path::PathBuf>,
    max_rss_mb: Option<u64>,
    bench_scale: bool,
    gen_threads: Option<usize>,
    rows_per_shard: usize,
    gen_serial: bool,
    serial_gen_child: Option<std::path::PathBuf>,
    days: Option<u64>,
    multi_day: bool,
    resume: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: 0.1,
            catalog_scale: 0.1,
            seed: 0x0A7_5EED,
            figures: Vec::new(),
            all: false,
            ablation: None,
            capacity: None,
            csv_dir: None,
            threads: 0,
            stream: false,
            shard_size: 0,
            sweep_threads: 0,
            faults: None,
            fault_seed: None,
            columnar: None,
            max_rss_mb: None,
            bench_scale: false,
            gen_threads: None,
            rows_per_shard: 0,
            gen_serial: false,
            serial_gen_child: None,
            days: None,
            multi_day: false,
            resume: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => opts.all = true,
            "--fig" => {
                let v = args.next().ok_or("--fig needs a number (1-16)")?;
                let n: u8 = v.parse().map_err(|_| format!("bad figure number {v:?}"))?;
                if !(1..=16).contains(&n) {
                    return Err(format!("figure {n} out of range 1-16"));
                }
                opts.figures.push(n);
            }
            "--ablation" => {
                opts.ablation = Some(args.next().ok_or("--ablation needs a name")?);
            }
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opts.scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
            }
            "--catalog-scale" => {
                let v = args.next().ok_or("--catalog-scale needs a value")?;
                opts.catalog_scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--capacity" => {
                let v = args.next().ok_or("--capacity needs bytes")?;
                opts.capacity = Some(v.parse().map_err(|_| format!("bad capacity {v:?}"))?);
            }
            "--csv-dir" => {
                let v = args.next().ok_or("--csv-dir needs a directory")?;
                opts.csv_dir = Some(std::path::PathBuf::from(v));
            }
            "--threads" => {
                let v = args
                    .next()
                    .ok_or("--threads needs a count (0 = all cores)")?;
                opts.threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            "--sweep-threads" => {
                let v = args
                    .next()
                    .ok_or("--sweep-threads needs a count (0 = all cores)")?;
                opts.sweep_threads = v
                    .parse()
                    .map_err(|_| format!("bad sweep thread count {v:?}"))?;
            }
            "--faults" => {
                let v = args.next().ok_or("--faults needs a TOML plan path")?;
                opts.faults = Some(std::path::PathBuf::from(v));
            }
            "--fault-seed" => {
                let v = args.next().ok_or("--fault-seed needs a value")?;
                opts.fault_seed = Some(v.parse().map_err(|_| format!("bad fault seed {v:?}"))?);
            }
            "--stream" => opts.stream = true,
            "--columnar" => {
                let v = args.next().ok_or("--columnar needs a directory")?;
                opts.columnar = Some(std::path::PathBuf::from(v));
            }
            "--max-rss-mb" => {
                let v = args.next().ok_or("--max-rss-mb needs a MiB cap")?;
                opts.max_rss_mb = Some(v.parse().map_err(|_| format!("bad RSS cap {v:?}"))?);
            }
            "--gen-threads" => {
                let v = args
                    .next()
                    .ok_or("--gen-threads needs a count (0 = all cores)")?;
                opts.gen_threads = Some(v.parse().map_err(|_| format!("bad thread count {v:?}"))?);
            }
            "--rows-per-shard" => {
                let v = args
                    .next()
                    .ok_or("--rows-per-shard needs a row count (0 = default)")?;
                opts.rows_per_shard = v.parse().map_err(|_| format!("bad rows-per-shard {v:?}"))?;
            }
            "--gen-serial" => opts.gen_serial = true,
            "--resume" => opts.resume = true,
            // Internal: re-exec target for --gen-serial. The serial path
            // holds whole in-memory runs, so it runs in a child process to
            // keep its peak RSS out of the parent's --max-rss-mb gate.
            "--serial-gen-child" => {
                let v = args.next().ok_or("--serial-gen-child needs a directory")?;
                opts.serial_gen_child = Some(std::path::PathBuf::from(v));
            }
            "--days" => {
                let v = args.next().ok_or("--days needs a day count")?;
                let days: u64 = v.parse().map_err(|_| format!("bad day count {v:?}"))?;
                if days == 0 {
                    return Err("--days must be at least 1".to_string());
                }
                opts.days = Some(days);
            }
            "--multi-day" => opts.multi_day = true,
            "bench" => {
                let sub = args.next().ok_or("bench needs a subcommand (scale)")?;
                if sub != "scale" {
                    return Err(format!("unknown bench subcommand {sub:?} (expected scale)"));
                }
                opts.bench_scale = true;
            }
            "--shard-size" => {
                let v = args
                    .next()
                    .ok_or("--shard-size needs a user count (0 = default)")?;
                opts.shard_size = v.parse().map_err(|_| format!("bad shard size {v:?}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [bench scale] [--all] [--fig N]... [--ablation NAME] \
                     [--scale S] [--catalog-scale S] [--seed N] [--capacity BYTES] \
                     [--csv-dir DIR] [--threads N] [--sweep-threads N] [--stream] [--shard-size N] \
                     [--columnar DIR] [--max-rss-mb N] [--gen-threads N] [--rows-per-shard N] \
                     [--gen-serial] [--days N] [--multi-day] [--resume] \
                     [--faults PLAN.toml] [--fault-seed N]\n\
                     bench scale: out-of-core throughput benchmark — generates a columnar \
                     request spool through the parallel direct-to-columnar engine, replays + \
                     analyzes it in bounded batches, and writes BENCH_scale.json \
                     (records/sec generate, records/sec analyze, peak RSS)\n\
                     ablations: cache-policy tiered-cache push incognito ttl cooperative parent-tier dtw\n\
                     --threads: generation + DTW matrix worker threads (0 = all cores); \
                     results are bit-identical at any setting\n\
                     --sweep-threads: configuration-grid worker threads for the cache \
                     ablations (0 = all cores); results are identical at any setting\n\
                     --stream: pipeline generate -> replay -> analyze through bounded \
                     batches with records spooled to columnar shards on disk (no retained \
                     in-memory copy) — same result\n\
                     --shard-size: users per generation shard (0 = default); any value \
                     yields the identical trace\n\
                     --columnar: directory for columnar shard spools (bench scale's request \
                     spool, or --stream's record spool base); default = system temp; an \
                     existing bench-scale spool is reused, skipping generation\n\
                     --max-rss-mb: exit 3 if the process's peak RSS (VmHWM) exceeded this \
                     many MiB by the end of the run\n\
                     --gen-threads: bench scale's generation worker threads (0 = all cores; \
                     default = --threads); the spool is byte-identical at any setting\n\
                     --rows-per-shard: rows per columnar spool shard (0 = default 4M)\n\
                     --gen-serial: bench scale also times the serial generate_columnar path \
                     (in a child process, so its in-memory peak stays out of this \
                     process's --max-rss-mb gate) and verifies the parallel spool is \
                     byte-identical to it (fills serial_generate_* in BENCH_scale.json)\n\
                     --days: override the trace duration to N days (default 7)\n\
                     --multi-day: shape session starts with the corpus multi-day model \
                     (weekend factor, per-day diurnal phase/amplitude drift)\n\
                     --resume: continue an interrupted bench-scale run in --columnar DIR — \
                     completed run files, merge groups and output shards recorded in the \
                     spool's scratch journal are reused, and analysis restarts from the \
                     last checkpoint; the result is byte-identical to an uninterrupted run\n\
                     --faults: deterministic fault-injection plan (TOML; window times are \
                     seconds from trace start); adds the availability section\n\
                     --fault-seed: derive an exercise-everything fault plan from a seed \
                     instead of a file\n\
                     exit codes: 0 ok; 1 export/bench failure; 2 usage error; 3 RSS cap \
                     exceeded; 4 out of disk space (partial manifest flushed, resumable); \
                     5 corrupt or mismatched spool manifest/checkpoint; 130 interrupted \
                     (partial report flushed); killed by SIGPIPE when stdout closes early"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !opts.all && opts.figures.is_empty() && opts.ablation.is_none() {
        opts.all = true;
    }
    Ok(opts)
}

fn main() {
    sig::install();
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    };

    if opts.bench_scale {
        if let Err(e) = run_bench_scale(&opts) {
            eprintln!("repro: bench scale failed: {e}");
            std::process::exit(e.exit_code());
        }
        checkpoint_interrupt();
        enforce_rss_cap(&opts);
        return;
    }

    if let Some(name) = &opts.ablation {
        run_ablation(name, &opts);
        checkpoint_interrupt();
        enforce_rss_cap(&opts);
        return;
    }

    let figures: Vec<u8> = if opts.all {
        (1..=16).collect()
    } else {
        opts.figures.clone()
    };
    let result = run_experiment(&opts);
    print_figures(&result, &figures);
    if opts.faults.is_some() || opts.fault_seed.is_some() {
        println!("{}", report::render_availability(&result.availability));
    }
    checkpoint_interrupt();
    if let Some(dir) = &opts.csv_dir {
        match oat_core::export::write_csvs(&result, dir) {
            Ok(files) => eprintln!(
                "repro: wrote {} CSV series to {}",
                files.len(),
                dir.display()
            ),
            Err(e) => {
                eprintln!("repro: CSV export failed: {e}");
                std::process::exit(1);
            }
        }
    }
    enforce_rss_cap(&opts);
}

/// Analysis checkpoint cadence: after every this many spool shards, the
/// three streaming analyzers are serialized into `CHECKPOINT-req` inside
/// the spool directory (atomic write), bounding lost work on a crash to
/// this many shards' worth of replay.
const CHECKPOINT_EVERY_SHARDS: usize = 8;

/// A bench-scale failure, classified so `main` can exit with the
/// documented code: `1` generic failure, `4` out of disk space (a partial
/// manifest was flushed — free space and rerun with `--resume`), `5`
/// corrupt or mismatched durable state (spool manifest or analysis
/// checkpoint failed verification — the spool cannot be trusted).
#[derive(Debug)]
enum BenchError {
    Fail(String),
    Enospc(String),
    Corrupt(String),
}

impl BenchError {
    fn exit_code(&self) -> i32 {
        match self {
            Self::Fail(_) => 1,
            Self::Enospc(_) => 4,
            Self::Corrupt(_) => 5,
        }
    }
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fail(msg) => write!(f, "{msg}"),
            Self::Enospc(msg) => write!(
                f,
                "out of disk space: {msg} (free space, rerun with --resume)"
            ),
            Self::Corrupt(msg) => write!(f, "corrupt or mismatched spool state: {msg}"),
        }
    }
}

impl From<String> for BenchError {
    fn from(msg: String) -> Self {
        Self::Fail(msg)
    }
}

/// Peak resident-set size of this process in MiB (`VmHWM` from
/// `/proc/self/status`); `None` where procfs is unavailable.
fn peak_rss_mb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024)
}

/// Enforces `--max-rss-mb`: exits `3` if the process's peak RSS exceeded
/// the cap. A platform without procfs reports and passes.
fn enforce_rss_cap(opts: &Options) {
    let Some(cap) = opts.max_rss_mb else {
        return;
    };
    match peak_rss_mb() {
        Some(peak) if peak > cap => {
            eprintln!("repro: peak RSS {peak} MiB exceeds --max-rss-mb {cap}");
            std::process::exit(3);
        }
        Some(peak) => eprintln!("repro: peak RSS {peak} MiB within --max-rss-mb {cap}"),
        None => eprintln!("repro: --max-rss-mb set but peak RSS is unavailable here"),
    }
}

/// Applies the duration/shape overrides (`--days`, `--multi-day`) to a
/// trace config.
fn apply_trace_shape(trace: &mut oat_workload::TraceConfig, opts: &Options) {
    if let Some(days) = opts.days {
        trace.duration_secs = days * 86_400;
    }
    if opts.multi_day {
        trace.multi_day = Some(oat_workload::MultiDayModel::corpus());
    }
}

/// `repro bench scale`: generates a columnar request spool out-of-core,
/// then replays + analyzes it (popularity, sessions, availability) in
/// bounded batches, and writes throughput + peak RSS to
/// `BENCH_scale.json` so the perf trajectory is tracked per PR.
///
/// Generation runs through the parallel direct-to-columnar engine
/// (`generate_columnar_parallel`): sorted run files, a hierarchical merge,
/// and a time-partitioned final merge keep generation's peak RSS bounded
/// by one shard's column buffers per worker — the same bounded-memory
/// invariant the analyze side already had, so the whole benchmark runs
/// under one `--max-rss-mb` gate. `--gen-serial` additionally times the
/// serial path and verifies the two spools are byte-identical.
///
/// When `--columnar DIR` already holds a spool, generation is skipped and
/// the existing shards are replayed (`generate_secs`/`generate_rps` are
/// `null` in the JSON for that run) — but only after the spool's
/// `MANIFEST` verifies: complete, fingerprint-matched to this
/// configuration, every shard present with the manifested row count. A
/// partial spool (crash mid-generation) resumes with `--resume` and is
/// refused otherwise; a mismatched or corrupt one exits `5`.
///
/// Analysis checkpoints its three streaming folds into
/// `CHECKPOINT-req` inside the spool directory every
/// [`CHECKPOINT_EVERY_SHARDS`] shards (atomic tmp+fsync+rename writes),
/// so `--resume` restarts replay at the last checkpointed shard instead
/// of shard zero. Restoring analyzer state without simulator (cache)
/// state is sound here because all three bench analyzers fold only
/// simulation-independent record fields — see `oat_core::checkpoint`.
fn run_bench_scale(opts: &Options) -> Result<(), BenchError> {
    use oat_core::analyzers::availability::AvailabilityAnalyzer;
    use oat_core::analyzers::popularity::PopularityAnalyzer;
    use oat_core::analyzers::sessions::SessionAnalyzer;
    use oat_core::analyzers::Analyzer as _;
    use oat_core::checkpoint::AnalysisCheckpoint;
    use oat_httplog::{
        is_enospc, write_atomic, ColumnarDirReader, ColumnarShard, HttplogError, ManifestError,
        RealIo, Request, Schema,
    };
    use oat_workload::{
        config_fingerprint, generate_columnar_parallel_with, ColumnarGenError, ParGenOptions,
        ResumeOptions,
    };

    let mut config = ExperimentConfig::small();
    config.trace.scale = opts.scale;
    config.trace.catalog_scale = opts.catalog_scale;
    config.trace.seed = opts.seed;
    apply_trace_shape(&mut config.trace, opts);
    config.sim.cache_capacity_bytes = opts
        .capacity
        .unwrap_or((64e9 * opts.catalog_scale).max(2e9) as u64);

    if let Some(child_dir) = &opts.serial_gen_child {
        return run_serial_gen_child(&config, opts, child_dir).map_err(BenchError::from);
    }

    let keep_spool = opts.columnar.is_some();
    let dir = opts.columnar.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("oat-bench-scale-{}", std::process::id()))
    });
    let gen_threads = opts.gen_threads.unwrap_or(opts.threads);
    let par_opts = ParGenOptions {
        threads: gen_threads,
        shard_size: opts.shard_size,
        run_rows: 0,
        merge_fanin: 0,
    };

    // A reusable spool must verify against its manifest first: silently
    // analyzing a partial or wrong-configuration spool is the failure mode
    // this whole layer exists to prevent.
    let fingerprint = config_fingerprint(&config.trace);
    let existing = if keep_spool {
        match ColumnarDirReader::<Request>::open_verified(&dir, "req", Some(fingerprint)) {
            Ok((reader, manifest)) => Some((reader, manifest.total_rows)),
            // No manifest: nothing durable to reuse (an interrupted run's
            // partial work is journaled under the spool's scratch dir and
            // picked up by the resume-aware generation below).
            Err(HttplogError::Manifest(ManifestError::Missing(_))) => None,
            Err(HttplogError::Manifest(ManifestError::Incomplete)) if opts.resume => None,
            Err(HttplogError::Manifest(ManifestError::Incomplete)) => {
                return Err(BenchError::Corrupt(format!(
                    "spool {} is incomplete (interrupted generation); \
                     rerun with --resume to finish it",
                    dir.display()
                )));
            }
            Err(e) if e.is_data_error() => {
                return Err(BenchError::Corrupt(format!(
                    "spool {} failed manifest verification: {e}",
                    dir.display()
                )));
            }
            Err(e) => return Err(BenchError::Fail(format!("open spool: {e}"))),
        }
    } else {
        None
    };
    let mut serial_secs: Option<f64> = None;
    let (reader, rows, shards, generate_secs) = match existing {
        Some((reader, rows)) => {
            let shards = reader.shards() as u64;
            eprintln!(
                "bench scale: reusing verified columnar spool in {} (skipping generation)",
                dir.display()
            );
            (reader, rows, shards, None)
        }
        None => {
            eprintln!(
                "bench scale: generating columnar request spool in {} ({} gen threads{})",
                dir.display(),
                if gen_threads == 0 {
                    "all".to_string()
                } else {
                    gen_threads.to_string()
                },
                if opts.resume { ", resuming" } else { "" }
            );
            let gen_start = std::time::Instant::now();
            let resume_opts = ResumeOptions {
                resume: opts.resume,
                ..ResumeOptions::default()
            };
            let trace = generate_columnar_parallel_with(
                &config.trace,
                &par_opts,
                &dir,
                "req",
                opts.rows_per_shard,
                &resume_opts,
            )
            .map_err(|e| match &e {
                ColumnarGenError::Spool(HttplogError::Io(io)) if is_enospc(io) => {
                    BenchError::Enospc(format!("generate: {e}"))
                }
                _ => BenchError::Fail(format!("generate: {e}")),
            })?;
            let generate_secs = gen_start.elapsed().as_secs_f64();
            if opts.gen_serial {
                serial_secs = Some(bench_serial_generate(opts, &dir)?);
            }
            let reader = trace.reader().map_err(|e| format!("open spool: {e}"))?;
            (reader, trace.rows, trace.shards, Some(generate_secs))
        }
    };
    checkpoint_interrupt();

    let map = oat_core::SiteMap::from_profiles(&config.trace.sites);
    let simulator = Simulator::new(&config.sim);
    let ckpt_path = dir.join("CHECKPOINT-req");
    let mut popularity = PopularityAnalyzer::new(map.clone());
    let mut sessions = SessionAnalyzer::new(map.clone());
    let mut availability = AvailabilityAnalyzer::new(map.clone());
    let mut start_shard = 0usize;
    let mut resumed_rows = 0u64;
    if opts.resume && keep_spool {
        match std::fs::read_to_string(&ckpt_path) {
            Ok(text) => {
                let corrupt = |msg: String| {
                    BenchError::Corrupt(format!("checkpoint {}: {msg}", ckpt_path.display()))
                };
                let cp =
                    AnalysisCheckpoint::from_text(&text).map_err(|e| corrupt(e.to_string()))?;
                if cp.fingerprint != fingerprint {
                    return Err(corrupt(format!(
                        "belongs to a different configuration (fingerprint {:016x}, \
                         expected {fingerprint:016x})",
                        cp.fingerprint
                    )));
                }
                if cp.shards_done > shards {
                    return Err(corrupt(format!(
                        "claims {} shards folded but the spool holds {shards}",
                        cp.shards_done
                    )));
                }
                let section = |name: &str| -> Result<&str, BenchError> {
                    cp.section(name)
                        .ok_or_else(|| corrupt(format!("missing the {name} section")))
                };
                popularity =
                    PopularityAnalyzer::from_checkpoint_state(map.clone(), section("popularity")?)
                        .map_err(|e| corrupt(e))?;
                sessions =
                    SessionAnalyzer::from_checkpoint_state(map.clone(), section("sessions")?)
                        .map_err(|e| corrupt(e))?;
                availability = AvailabilityAnalyzer::from_checkpoint_state(
                    map.clone(),
                    section("availability")?,
                )
                .map_err(|e| corrupt(e))?;
                start_shard = cp.shards_done as usize;
                resumed_rows = cp.rows_done;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(BenchError::Fail(format!("read checkpoint: {e}"))),
        }
    }

    eprintln!("bench scale: replaying + analyzing {rows} records from {shards} shards");
    if start_shard > 0 {
        eprintln!(
            "bench scale: resuming analysis at shard {start_shard} \
             ({resumed_rows} rows already folded)"
        );
    }
    let analyze_start = std::time::Instant::now();
    let mut replayed = resumed_rows;
    // Shard-by-shard replay (same bounded batches the whole-directory scan
    // used) so completed shards can be checkpointed between shards.
    for (idx, path) in reader.paths().iter().enumerate().skip(start_shard) {
        // Shard damage (checksum mismatch, truncation, bad encoding) is a
        // trust failure, not an environment failure: exit 5, same as a
        // manifest that fails verification.
        let classify = |e: oat_httplog::ColumnarError| {
            let msg = format!("shard {}: {e}", path.display());
            if e.is_data_error() {
                BenchError::Corrupt(msg)
            } else {
                BenchError::Fail(msg)
            }
        };
        let shard = ColumnarShard::open_expecting(path, Schema::Request).map_err(classify)?;
        let shard_rows = shard.rows();
        let mut lo = 0usize;
        while lo < shard_rows {
            let hi = lo.saturating_add(65_536).min(shard_rows);
            let mut batch: Vec<Request> = Vec::with_capacity(hi - lo);
            shard.read_rows(lo..hi, &mut batch).map_err(classify)?;
            let records = simulator.replay(batch);
            replayed += records.len() as u64;
            popularity.observe_batch(&records);
            sessions.observe_batch(&records);
            availability.observe_batch(&records);
            lo = hi;
        }
        let done = idx + 1;
        if keep_spool && done < reader.shards() && done % CHECKPOINT_EVERY_SHARDS == 0 {
            let mut cp = AnalysisCheckpoint::new(fingerprint);
            cp.shards_done = done as u64;
            cp.rows_done = replayed;
            cp.set_section("popularity", popularity.checkpoint_state());
            cp.set_section("sessions", sessions.checkpoint_state());
            cp.set_section("availability", availability.checkpoint_state());
            let text = cp.to_text();
            write_atomic(&RealIo, &ckpt_path, |w| w.write_all(text.as_bytes())).map_err(|e| {
                if is_enospc(&e) {
                    BenchError::Enospc(format!("write analysis checkpoint: {e}"))
                } else {
                    BenchError::Fail(format!("write analysis checkpoint: {e}"))
                }
            })?;
        }
        checkpoint_interrupt();
    }
    let analyze_secs = analyze_start.elapsed().as_secs_f64();
    // The folds themselves are part of the measured work; the reports are
    // summarized so the analysis cannot be optimized away.
    let popularity = popularity.finish();
    let sessions = sessions.finish();
    let availability = availability.finish();
    eprintln!(
        "bench scale: {} popularity series, {} session series, healthy={}",
        popularity.video.len() + popularity.image.len(),
        sessions.sites.len(),
        availability.is_healthy()
    );
    let _ = std::fs::remove_file(&ckpt_path);
    if !keep_spool {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let rps = |records: u64, secs: f64| records as f64 / secs.max(1e-9);
    let peak = peak_rss_mb();
    let gen_threads_json = if generate_secs.is_some() {
        let resolved = if gen_threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            gen_threads
        };
        resolved.to_string()
    } else {
        "null".to_string()
    };
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"scale\": {},\n  \"catalog_scale\": {},\n  \
         \"seed\": {},\n  \"records\": {},\n  \"spool_shards\": {},\n  \
         \"gen_threads\": {},\n  \"generate_secs\": {},\n  \"generate_rps\": {},\n  \
         \"serial_generate_secs\": {},\n  \"serial_generate_rps\": {},\n  \
         \"analyze_secs\": {:.3},\n  \"analyze_rps\": {:.0},\n  \"peak_rss_mb\": {}\n}}\n",
        opts.scale,
        opts.catalog_scale,
        opts.seed,
        rows,
        shards,
        gen_threads_json,
        generate_secs.map_or("null".to_string(), |s| format!("{s:.3}")),
        generate_secs.map_or("null".to_string(), |s| format!("{:.0}", rps(rows, s))),
        serial_secs.map_or("null".to_string(), |s| format!("{s:.3}")),
        serial_secs.map_or("null".to_string(), |s| format!("{:.0}", rps(rows, s))),
        analyze_secs,
        rps(replayed - resumed_rows, analyze_secs),
        peak.map_or("null".to_string(), |mb| mb.to_string()),
    );
    std::fs::write("BENCH_scale.json", &json)
        .map_err(|e| format!("write BENCH_scale.json: {e}"))?;
    print!("{json}");
    eprintln!("bench scale: wrote BENCH_scale.json");
    Ok(())
}

/// `--serial-gen-child` entry point: times the serial `generate_columnar`
/// path into `dir` and reports the seconds on stdout. Runs in its own
/// process because the serial path holds whole in-memory runs — re-execing
/// keeps its (unbounded) peak RSS out of the parent's `--max-rss-mb` gate,
/// which covers exactly the bounded parallel + analyze pipeline.
fn run_serial_gen_child(
    config: &ExperimentConfig,
    opts: &Options,
    dir: &std::path::Path,
) -> Result<(), String> {
    use oat_workload::{generate_columnar, GenOptions};
    let _ = std::fs::remove_dir_all(dir);
    let gen_opts = GenOptions {
        threads: 1,
        shard_size: opts.shard_size,
    };
    let start = std::time::Instant::now();
    generate_columnar(&config.trace, &gen_opts, 0, dir, "req", opts.rows_per_shard)
        .map_err(|e| format!("serial generate: {e}"))?;
    println!("serial_generate_secs={}", start.elapsed().as_secs_f64());
    Ok(())
}

/// Times the serial `generate_columnar` path (re-executed as a child
/// process so its in-memory peak stays out of this process's `VmHWM`) into
/// a scratch directory, verifies its shard files are byte-identical to the
/// parallel spool in `dir`, then removes the scratch.
fn bench_serial_generate(opts: &Options, dir: &std::path::Path) -> Result<f64, String> {
    let serial_dir = std::env::temp_dir().join(format!("oat-bench-serial-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&serial_dir);
    eprintln!(
        "bench scale: timing serial generation into {} for comparison (child process)",
        serial_dir.display()
    );
    let exe = std::env::current_exe().map_err(|e| format!("locate own executable: {e}"))?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("bench")
        .arg("scale")
        .arg("--scale")
        .arg(opts.scale.to_string())
        .arg("--catalog-scale")
        .arg(opts.catalog_scale.to_string())
        .arg("--seed")
        .arg(opts.seed.to_string())
        .arg("--shard-size")
        .arg(opts.shard_size.to_string())
        .arg("--rows-per-shard")
        .arg(opts.rows_per_shard.to_string())
        .arg("--serial-gen-child")
        .arg(&serial_dir);
    if let Some(days) = opts.days {
        cmd.arg("--days").arg(days.to_string());
    }
    if opts.multi_day {
        cmd.arg("--multi-day");
    }
    let out = cmd
        .stderr(std::process::Stdio::inherit())
        .output()
        .map_err(|e| format!("spawn serial generation child: {e}"))?;
    if !out.status.success() {
        return Err(format!("serial generation child failed ({})", out.status));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let secs: f64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("serial_generate_secs="))
        .ok_or_else(|| format!("serial generation child output unrecognized: {stdout:?}"))?
        .parse()
        .map_err(|e| format!("serial generation child reported bad seconds: {e}"))?;
    let mismatch = compare_spool_dirs(dir, &serial_dir)?;
    let _ = std::fs::remove_dir_all(&serial_dir);
    if let Some(name) = mismatch {
        return Err(format!("parallel spool differs from serial at {name}"));
    }
    eprintln!("bench scale: parallel spool is byte-identical to the serial path");
    Ok(secs)
}

/// Compares the `.col` files of two spool directories byte for byte.
/// Returns the first differing (or missing) file name, if any.
fn compare_spool_dirs(a: &std::path::Path, b: &std::path::Path) -> Result<Option<String>, String> {
    let list = |dir: &std::path::Path| -> Result<Vec<String>, String> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| format!("list {}: {e}", dir.display()))? {
            let entry = entry.map_err(|e| format!("list {}: {e}", dir.display()))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".col") {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    };
    let names_a = list(a)?;
    let names_b = list(b)?;
    if names_a != names_b {
        let mismatch = names_a
            .iter()
            .find(|n| !names_b.contains(n))
            .or_else(|| names_b.iter().find(|n| !names_a.contains(n)))
            .cloned()
            .unwrap_or_else(|| "<file list>".to_string());
        return Ok(Some(mismatch));
    }
    for name in &names_a {
        let bytes_a =
            std::fs::read(a.join(name)).map_err(|e| format!("read {name} from A: {e}"))?;
        let bytes_b =
            std::fs::read(b.join(name)).map_err(|e| format!("read {name} from B: {e}"))?;
        if bytes_a != bytes_b {
            return Ok(Some(name.clone()));
        }
    }
    Ok(None)
}

fn run_experiment(opts: &Options) -> ExperimentResult {
    let mut config = ExperimentConfig::small();
    config.trace.scale = opts.scale;
    config.trace.catalog_scale = opts.catalog_scale;
    config.trace.seed = opts.seed;
    apply_trace_shape(&mut config.trace, opts);
    // Per-PoP capacity tracks the catalog size (the paper's CDN provisions
    // for its full catalogs); override with --capacity.
    config.sim.cache_capacity_bytes = opts
        .capacity
        .unwrap_or((64e9 * opts.catalog_scale).max(2e9) as u64);
    config.clustering.threads = opts.threads;
    if let Some(plan) = load_fault_plan(opts, &config) {
        config.faults = Some(plan);
    }
    eprintln!(
        "repro: scale {} catalog-scale {} seed {}{}",
        opts.scale,
        opts.catalog_scale,
        opts.seed,
        if opts.stream { " (streaming)" } else { "" }
    );
    let start = std::time::Instant::now();
    let result = if opts.stream {
        let stream_opts = StreamOptions {
            threads: opts.threads,
            shard_size: opts.shard_size,
            batch_size: 0,
            spool_dir: opts.columnar.clone(),
            rows_per_shard: 0,
        };
        oat_core::experiment::run_streaming(&config, &stream_opts).expect("valid config")
    } else {
        oat_core::experiment::run(&config).expect("valid config")
    };
    eprintln!(
        "repro: {} records analyzed in {:.1?}",
        result.records,
        start.elapsed()
    );
    result
}

/// Resolves `--faults` / `--fault-seed` into a plan in absolute trace
/// time. File plans are authored relative to trace start (hour 1 is
/// `start = 3600`), so both paths shift by the trace's start epoch.
fn load_fault_plan(opts: &Options, config: &ExperimentConfig) -> Option<FaultPlan> {
    let plan = if let Some(path) = &opts.faults {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("repro: cannot read fault plan {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        match FaultPlan::from_toml_str(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("repro: invalid fault plan {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    } else if let Some(seed) = opts.fault_seed {
        let pops = (config.sim.pops_per_region * 4) as u16;
        FaultPlan::sample(seed, config.trace.duration_secs, pops)
    } else {
        return None;
    };
    Some(plan.shifted(config.trace.start_unix))
}

fn print_figures(result: &ExperimentResult, figures: &[u8]) {
    for &fig in figures {
        checkpoint_interrupt();
        match fig {
            1 | 2 if (fig == 1 || !figures.contains(&1)) => {
                paper(
                        "Fig 1: V-1 98% video objects; V-2 84% image / 15% video; \
                         P-1, P-2, S-1 ~99% image.\n\
                         Fig 2a: video requests dominate V-1 (3.1M); V-2 has ~62% image vs ~34% video.\n\
                         Fig 2b: video dominates bytes wherever it exists (V-1: 258 GB).",
                    );
                println!("{}", report::render_composition(&result.composition));
            }
            3 => {
                paper(
                    "Fig 3: not classic diurnal; V-1 peaks late-night/early-morning \
                     (opposite the 7-11pm web peak) with the strongest variation.",
                );
                println!("{}", report::render_temporal(&result.temporal));
            }
            4 => {
                paper(
                    "Fig 4: desktop dominates everywhere; V-2 > 95% desktop; \
                     S-1 > 1/3 smartphone+misc.",
                );
                println!("{}", report::render_devices(&result.devices));
            }
            5 => {
                paper(
                    "Fig 5a: most videos > 1 MB; P-2 has the largest videos.\n\
                     Fig 5b: image sizes bi-modal (thumbnails vs full-size < 1 MB).",
                );
                println!("{}", report::render_sizes(&result.sizes));
            }
            6 => {
                paper(
                    "Fig 6: long-tailed popularity on every site; a small fraction \
                     of objects draws most requests.",
                );
                println!("{}", report::render_popularity(&result.popularity));
            }
            7 => {
                paper(
                    "Fig 7: declining fraction requested with age; ~20% silent after \
                     day 3; ~10% requested throughout the week.",
                );
                println!("{}", report::render_aging(&result.aging));
            }
            8..=10 if (fig == 8 || !figures.contains(&8)) => {
                paper(
                    "Fig 8: V-2 video clusters: outliers 33%, long-lived 22%, \
                         short-lived 20%, diurnal 11%+14%. P-2 image: diurnal 61%, \
                         long-lived 25%, flash-crowd 14%.\n\
                         Fig 9/10: medoids show diurnal oscillation, first-day peak \
                         with multi-day decay, and hours-scale bursts.",
                );
                for c in &result.clusterings {
                    println!("{}", report::render_clustering(c));
                }
            }
            11 => {
                paper("Fig 11: video-site median IAT < 10 min; image-heavy sites > 1 h.");
                println!("{}", report::render_iat(&result.iat));
            }
            12 => {
                paper(
                    "Fig 12: 10-min timeout; median sessions ~1 min — much shorter \
                     than non-adult sites (YouTube ~2 min).",
                );
                println!("{}", report::render_sessions(&result.sessions));
            }
            13 | 14 if (fig == 13 || !figures.contains(&13)) => {
                paper(
                    "Fig 13: video objects sit far above the requests=users diagonal \
                         (up to 2 orders of magnitude).\n\
                         Fig 14: >=10% of video objects exceed 10 req/user; <1% of images do.",
                );
                println!("{}", report::render_addiction(&result.addiction));
            }
            15 => {
                paper(
                    "Fig 15: overall CDN hit ratios 80-90%; image objects cache better \
                     than video; popularity-hit correlation > 0.9.",
                );
                println!("{}", report::render_cache(&result.cache));
            }
            16 => {
                paper(
                    "Fig 16: 200 dominates; 206 for (chunked) video; 304 notably rare \
                     (incognito browsing defeats browser caching); some 403/416.",
                );
                println!("{}", report::render_responses(&result.responses));
            }
            _ => {}
        }
    }
}

fn paper(text: &str) {
    println!("--- paper ---");
    for line in text.lines() {
        println!("  {}", line.trim());
    }
    println!("--- measured ---");
}

fn run_ablation(name: &str, opts: &Options) {
    match name {
        "cache-policy" => ablation_cache_policy(opts),
        "tiered-cache" => ablation_tiered_cache(opts),
        "push" => ablation_push(opts),
        "incognito" => ablation_incognito(opts),
        "ttl" => ablation_ttl(opts),
        "cooperative" => ablation_cooperative(opts),
        "parent-tier" => ablation_parent_tier(opts),
        "dtw" => ablation_dtw(opts),
        other => {
            eprintln!(
                "repro: unknown ablation {other:?} \
                 (try cache-policy|tiered-cache|push|incognito|ttl|cooperative|parent-tier|dtw)"
            );
            std::process::exit(2);
        }
    }
}

fn base_trace(opts: &Options) -> oat_workload::Trace {
    let config = TraceConfig::paper_week()
        .with_scale(opts.scale)
        .with_catalog_scale(opts.catalog_scale)
        .with_seed(opts.seed);
    generate(&config).expect("valid config")
}

/// Evaluates a configuration grid over the shared trace — one routing
/// pass, no per-configuration request clone.
fn run_sweep(trace: &oat_workload::Trace, grid: &[SimConfig], opts: &Options) -> Vec<SweepResult> {
    Sweep::new(&trace.requests)
        .with_threads(opts.sweep_threads)
        .run(grid)
}

/// A1 — eviction-policy comparison across capacities.
fn ablation_cache_policy(opts: &Options) {
    let trace = base_trace(opts);
    println!("A1 — cache policy vs capacity");
    let latency = LatencyModel::broadband();
    println!(
        "{:<10} {:>10} {:>11} {:>13} {:>13} {:>8}",
        "policy", "capacity", "hit-ratio", "byte-savings", "mean latency", "engine"
    );
    let mut grid = Vec::new();
    for capacity in [200_000_000u64, 1_000_000_000, 4_000_000_000, 16_000_000_000] {
        for policy in PolicyKind::ALL {
            if policy == PolicyKind::Infinite && capacity != 16_000_000_000 {
                continue;
            }
            grid.push(
                SimConfig::default_edge()
                    .with_policy(policy)
                    .with_capacity(capacity),
            );
        }
    }
    for result in run_sweep(&trace, &grid, opts) {
        println!(
            "{:<10} {:>10} {:>10.1}% {:>12.1}% {:>10.0} ms {:>8}",
            result.config.policy.to_string(),
            report::human_bytes(result.config.cache_capacity_bytes),
            100.0 * result.stats.hit_ratio().unwrap_or(0.0),
            100.0 * result.stats.byte_savings().unwrap_or(0.0),
            latency.mean_from_stats(&result.stats).unwrap_or(0.0),
            result.engine,
        );
    }
}

/// A2 — unified cache vs small/large split (paper §IV-B suggestion).
fn ablation_tiered_cache(opts: &Options) {
    let trace = base_trace(opts);
    let capacity = 1_000_000_000u64;
    let threshold = 1_000_000u64;

    let run = |cache: &mut dyn CachePolicy| {
        let (mut hits, mut total) = (0u64, 0u64);
        for req in &trace.requests {
            if let Some((key, size)) = cacheable_key(req) {
                total += 1;
                hits += u64::from(cache.request(key, size, req.timestamp));
            }
        }
        hits as f64 / total.max(1) as f64
    };

    let mut unified = LruCache::new(capacity);
    let unified_ratio = run(&mut unified);

    // 30% of bytes to a small-object SLRU, 70% to a large-object LRU.
    let mut tiered = TieredCache::new(
        Box::new(SlruCache::new(capacity * 3 / 10)),
        Box::new(LruCache::new(capacity * 7 / 10)),
        threshold,
    );
    let tiered_ratio = run(&mut tiered);

    println!(
        "A2 — unified vs size-tiered cache ({} total, split at {})",
        report::human_bytes(capacity),
        report::human_bytes(threshold)
    );
    println!(
        "unified LRU          hit ratio {:.1}%",
        100.0 * unified_ratio
    );
    println!(
        "tiered SLRU+LRU      hit ratio {:.1}%",
        100.0 * tiered_ratio
    );
    println!(
        "paper: separate small/large platforms let each tier be optimized; \
         the small tier shields thumbnails from video churn"
    );
}

/// A3 — push placement lift.
fn ablation_push(opts: &Options) {
    let trace = base_trace(opts);
    let start = trace.config.start_unix;
    let split = start + 86_400;
    let day1: Vec<_> = trace
        .requests
        .iter()
        .filter(|r| r.timestamp < split)
        .cloned()
        .collect();
    let rest: Vec<_> = trace
        .requests
        .iter()
        .filter(|r| r.timestamp >= split)
        .cloned()
        .collect();
    println!("A3 — push popular objects to every PoP (plan from day 1, replay days 2-7)");
    println!(
        "{:>12} {:>10} {:>11}",
        "push budget", "objects", "hit-ratio"
    );
    for budget in [0u64, 100_000_000, 500_000_000, 2_000_000_000] {
        let sim = Simulator::new(&SimConfig::default_edge().with_capacity(1_000_000_000));
        let plan = plan_push(&day1, budget);
        sim.preload(plan.iter().map(|p| (p.key, p.size)));
        let stats = sim.replay_stats(&rest);
        println!(
            "{:>12} {:>10} {:>10.1}%",
            report::human_bytes(budget),
            plan.len(),
            100.0 * stats.hit_ratio().unwrap_or(0.0),
        );
    }
}

/// A4 — incognito browsing rate vs 304 (revalidation) share.
fn ablation_incognito(opts: &Options) {
    println!("A4 — incognito rate vs browser-cache revalidation (304 share)");
    println!("{:>9} {:>12} {:>10}", "incognito", "304 share", "records");
    for rate in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut site = SiteProfile::p1();
        site.incognito_rate = rate;
        let config = TraceConfig {
            sites: vec![site],
            ..TraceConfig::paper_week()
        }
        .with_scale(opts.scale)
        .with_catalog_scale(opts.catalog_scale)
        .with_seed(opts.seed);
        let trace = generate(&config).expect("valid config");
        let sim = Simulator::new(&SimConfig::default_edge());
        let stats = sim.replay_stats(&trace.requests);
        let not_modified = stats.status_count(HttpStatus::NOT_MODIFIED) as f64;
        println!(
            "{:>8.0}% {:>11.2}% {:>10}",
            100.0 * rate,
            100.0 * not_modified / (stats.requests as f64).max(1.0),
            stats.requests
        );
    }
    println!(
        "paper: prevalent incognito browsing means publishers cannot rely on \
         browser caches — 304 responses stay rare"
    );
}

/// A5 — freshness TTL sweep (trend-aware revalidation schedules).
fn ablation_ttl(opts: &Options) {
    let trace = base_trace(opts);
    println!("A5 — freshness TTL vs hit ratio (LRU 4 GB per PoP)");
    println!("{:>8} {:>11}", "ttl", "hit-ratio");
    let settings = [
        ("1h", Some(3_600u64)),
        ("6h", Some(6 * 3_600)),
        ("1d", Some(86_400)),
        ("3d", Some(3 * 86_400)),
        ("none", None),
    ];
    let grid: Vec<SimConfig> = settings
        .iter()
        .map(|&(_, ttl)| SimConfig {
            ttl_secs: ttl,
            ..SimConfig::default_edge()
        })
        .collect();
    for ((label, _), result) in settings.iter().zip(run_sweep(&trace, &grid, opts)) {
        println!(
            "{:>8} {:>10.1}%",
            label,
            100.0 * result.stats.hit_ratio().unwrap_or(0.0)
        );
    }
    println!(
        "paper: revalidate short-lived objects hourly and long-lived daily; \
         longer expiry for diurnal/long-lived content recovers hit ratio"
    );
}

/// A7 — cooperative (networked) caching across PoPs.
fn ablation_cooperative(opts: &Options) {
    let trace = base_trace(opts);
    println!("A7 — cooperative sibling-PoP lookups vs isolated PoPs");
    let latency = LatencyModel::broadband();
    println!(
        "{:<12} {:>10} {:>11} {:>13} {:>13}",
        "mode", "capacity", "hit-ratio", "byte-savings", "mean latency"
    );
    let mut grid = Vec::new();
    let mut labels = Vec::new();
    for capacity in [500_000_000u64, 2_000_000_000] {
        for (label, cooperative) in [("isolated", false), ("cooperative", true)] {
            let mut config = SimConfig::default_edge().with_capacity(capacity);
            config.cooperative = cooperative;
            grid.push(config);
            labels.push(label);
        }
    }
    for (label, result) in labels.iter().zip(run_sweep(&trace, &grid, opts)) {
        println!(
            "{:<12} {:>10} {:>10.1}% {:>12.1}% {:>10.0} ms",
            label,
            report::human_bytes(result.config.cache_capacity_bytes),
            100.0 * result.stats.hit_ratio().unwrap_or(0.0),
            100.0 * result.stats.byte_savings().unwrap_or(0.0),
            latency.mean_from_stats(&result.stats).unwrap_or(0.0),
        );
    }
    println!(
        "paper: CDNs can reduce network traffic with customized networked \
         cache configuration — a sibling copy spares the origin"
    );
}

/// A8 — regional parent cache tier (hierarchical placement).
fn ablation_parent_tier(opts: &Options) {
    let trace = base_trace(opts);
    let latency = LatencyModel::broadband();
    println!("A8 — flat edges vs edge + regional parent tier");
    println!(
        "{:<26} {:>11} {:>13} {:>13}",
        "deployment", "hit-ratio", "byte-savings", "mean latency"
    );
    // Four edges per region share one parent; the flat alternative spends
    // the parent's bytes on the edges instead (same total budget).
    let edge = 500_000_000u64;
    let base = SimConfig {
        pops_per_region: 4,
        ..SimConfig::default_edge()
    };
    let labels = [
        "4x edge 500MB",
        "4x edge 500MB + parent 2GB",
        "4x flat edge 1GB (same bytes)",
    ];
    let grid = vec![
        base.clone().with_capacity(edge),
        base.clone().with_capacity(edge).with_parent(4 * edge),
        base.with_capacity(2 * edge),
    ];
    for (label, result) in labels.iter().zip(run_sweep(&trace, &grid, opts)) {
        println!(
            "{:<26} {:>10.1}% {:>12.1}% {:>10.0} ms",
            label,
            100.0 * result.stats.hit_ratio().unwrap_or(0.0),
            100.0 * result.stats.byte_savings().unwrap_or(0.0),
            latency.mean_from_stats(&result.stats).unwrap_or(0.0),
        );
    }
    println!(
        "paper: 'cache placement strategies' — a shared regional tier pools \
         the long tail that per-PoP caches cannot each afford to keep"
    );
}

/// A6 — DTW vs Euclidean clustering quality against planted ground truth.
fn ablation_dtw(opts: &Options) {
    let config = TraceConfig {
        sites: vec![SiteProfile::v2()],
        ..TraceConfig::paper_week()
    }
    .with_scale(opts.scale.max(0.05))
    .with_catalog_scale(opts.catalog_scale.max(0.02))
    .with_seed(opts.seed);
    let trace = generate(&config).expect("valid config");
    let catalog = &trace.catalogs[0];
    let truth: std::collections::HashMap<u64, oat_timeseries::TrendClass> = catalog
        .objects()
        .iter()
        .map(|o| (o.id.raw(), o.trend.class()))
        .collect();

    // Hourly series for the top video objects.
    let hours = (config.duration_secs / 3600) as usize;
    let mut counts: std::collections::HashMap<u64, (u64, Vec<f64>)> = Default::default();
    for req in &trace.requests {
        if req.content_class() != ContentClass::Video {
            continue;
        }
        let h = ((req.timestamp - config.start_unix) / 3600) as usize;
        if h >= hours {
            continue;
        }
        let entry = counts
            .entry(req.object.raw())
            .or_insert_with(|| (0, vec![0.0; hours]));
        entry.0 += 1;
        entry.1[h] += 1.0;
    }
    let mut top: Vec<(u64, u64, Vec<f64>)> =
        counts.into_iter().map(|(id, (n, s))| (id, n, s)).collect();
    top.sort_by_key(|&(_, n, _)| std::cmp::Reverse(n));
    top.truncate(120);
    top.retain(|(_, n, _)| *n >= 40);
    let ids: Vec<u64> = top.iter().map(|(id, _, _)| *id).collect();
    let series: Vec<Vec<f64>> = top
        .iter()
        .map(|(_, _, s)| {
            let sm = oat_timeseries::normalize::moving_average(s, 2);
            oat_timeseries::normalize::sum_normalize(&sm).unwrap_or(sm)
        })
        .collect();

    println!(
        "A6 — clustering metric quality on {} V-2 video objects (planted trends as truth)",
        series.len()
    );
    println!("{:<22} {:>8}", "metric", "purity");
    for (label, metric) in [
        ("dtw (band 24)", Metric::Dtw { band: Some(24) }),
        ("dtw (unconstrained)", Metric::Dtw { band: None }),
        ("euclidean", Metric::Euclidean),
    ] {
        let Some(matrix) = pairwise_matrix(&series, metric) else {
            println!("{label:<22} {:>8}", "-");
            continue;
        };
        let dendrogram = hierarchical::cluster(&matrix, Linkage::Ward);
        let labels = dendrogram.cut_k(5);
        // Purity: majority planted class per cluster.
        let k = labels.iter().max().map_or(0, |&m| m + 1);
        let mut majority = 0usize;
        for cluster in 0..k {
            let mut votes: std::collections::HashMap<_, usize> = Default::default();
            for (i, &l) in labels.iter().enumerate() {
                if l == cluster {
                    *votes.entry(truth[&ids[i]]).or_insert(0) += 1;
                }
            }
            majority += votes.values().max().copied().unwrap_or(0);
        }
        println!(
            "{label:<22} {:>7.1}%",
            100.0 * majority as f64 / series.len() as f64
        );
    }
    println!("paper: DTW chosen for its alignment of time-shifted popularity curves");
}
