//! Shared fixtures for the reproduction harness and criterion benches.

#![forbid(unsafe_code)]

use oat_cdnsim::{SimConfig, Simulator};
use oat_httplog::LogRecord;
use oat_workload::{generate, Trace, TraceConfig};

/// Generates a deterministic trace at the given scales.
///
/// # Panics
///
/// Panics on invalid scales (callers pass literals).
pub fn trace(scale: f64, catalog_scale: f64, seed: u64) -> Trace {
    let config = TraceConfig::paper_week()
        .with_scale(scale)
        .with_catalog_scale(catalog_scale)
        .with_seed(seed);
    generate(&config).expect("fixture config is valid")
}

/// Generates a trace and replays it through a default edge, returning the
/// finished records plus the simulator (for its stats).
pub fn records(scale: f64, catalog_scale: f64, seed: u64) -> (Vec<LogRecord>, Simulator, Trace) {
    let t = trace(scale, catalog_scale, seed);
    let sim = Simulator::new(&SimConfig::default_edge());
    let recs = sim.replay(t.requests.clone());
    (recs, sim, t)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixtures_are_deterministic() {
        let a = super::trace(0.001, 0.005, 1);
        let b = super::trace(0.001, 0.005, 1);
        assert_eq!(a.requests.len(), b.requests.len());
    }
}
