//! Buffered streaming readers and writers for both codecs.

use crate::codec::{binary, text};
use crate::error::HttplogError;
use crate::record::LogRecord;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Wire format selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Tab-separated text, one record per line.
    #[default]
    Text,
    /// Length-prefixed binary frames.
    Binary,
}

/// A streaming log writer over any [`Write`].
///
/// Note that a `&mut W` is itself a `Write`, so an existing writer can be
/// passed by mutable reference.
///
/// # Example
///
/// ```
/// use oat_httplog::{HttplogError, LogReader, LogWriter, LogRecord};
///
/// let mut buf = Vec::new();
/// let mut w = LogWriter::text(&mut buf);
/// w.write(&LogRecord::example())?;
/// w.flush()?;
///
/// let records: Vec<_> = LogReader::text(&buf[..]).collect::<Result<_, _>>()?;
/// assert_eq!(records, vec![LogRecord::example()]);
/// # Ok::<(), HttplogError>(())
/// ```
#[derive(Debug)]
pub struct LogWriter<W: Write> {
    inner: W,
    format: Format,
    line_buf: String,
    frame_buf: Vec<u8>,
    written: u64,
}

impl<W: Write> LogWriter<W> {
    /// Creates a writer with the given format.
    pub fn new(inner: W, format: Format) -> Self {
        Self {
            inner,
            format,
            line_buf: String::new(),
            frame_buf: Vec::new(),
            written: 0,
        }
    }

    /// Creates a text-format writer.
    pub fn text(inner: W) -> Self {
        Self::new(inner, Format::Text)
    }

    /// Creates a binary-format writer.
    pub fn binary(inner: W) -> Self {
        Self::new(inner, Format::Binary)
    }

    /// Writes one record.
    ///
    /// # Errors
    ///
    /// [`HttplogError::Io`] for sink failures, [`HttplogError::Encode`]
    /// for unencodable records (oversized user agents).
    pub fn write(&mut self, record: &LogRecord) -> Result<(), HttplogError> {
        match self.format {
            Format::Text => {
                self.line_buf.clear();
                text::encode_into(record, &mut self.line_buf);
                self.line_buf.push('\n');
                self.inner.write_all(self.line_buf.as_bytes())?;
            }
            Format::Binary => {
                self.frame_buf.clear();
                binary::encode(record, &mut self.frame_buf)?;
                self.inner.write_all(&self.frame_buf)?;
            }
        }
        self.written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates IO errors from the underlying writer.
    pub fn flush(&mut self) -> Result<(), HttplogError> {
        self.inner.flush()?;
        Ok(())
    }

    /// Consumes the writer, returning the underlying sink (without
    /// flushing).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// A streaming log reader: an iterator of [`LogRecord`]s over any [`Read`].
#[derive(Debug)]
pub struct LogReader<R: Read> {
    inner: BufReader<R>,
    format: Format,
    line_buf: String,
    done: bool,
    fail_fast: bool,
}

impl<R: Read> LogReader<R> {
    /// Creates a reader with the given format.
    pub fn new(inner: R, format: Format) -> Self {
        Self {
            inner: BufReader::new(inner),
            format,
            line_buf: String::new(),
            done: false,
            fail_fast: true,
        }
    }

    /// Keeps reading past corrupt records instead of stopping at the first
    /// error, for callers that quarantine bad records (for example
    /// [`read_merged_lossy`](crate::shard::read_merged_lossy)).
    ///
    /// Only errors that leave the stream at a record boundary are
    /// resumable: malformed text lines (the line was fully consumed) and
    /// binary frames whose body fails validation (the frame was fully
    /// consumed). IO errors, truncated frames and unknown frame versions
    /// remain terminal — there is no boundary to resync to.
    pub fn resilient(mut self) -> Self {
        self.fail_fast = false;
        self
    }

    /// Creates a text-format reader.
    pub fn text(inner: R) -> Self {
        Self::new(inner, Format::Text)
    }

    /// Creates a binary-format reader.
    pub fn binary(inner: R) -> Self {
        Self::new(inner, Format::Binary)
    }

    fn next_text(&mut self) -> Option<Result<LogRecord, HttplogError>> {
        loop {
            self.line_buf.clear();
            match self.inner.read_line(&mut self.line_buf) {
                Ok(0) => return None,
                Ok(_) => {
                    let line = self.line_buf.trim_end_matches(['\n', '\r']);
                    if line.is_empty() {
                        continue; // skip blank lines
                    }
                    return Some(text::decode(line).map_err(HttplogError::from));
                }
                Err(e) => return Some(Err(e.into())),
            }
        }
    }

    fn next_binary(&mut self) -> Option<Result<LogRecord, HttplogError>> {
        // Peek: are we at clean EOF?
        match self.inner.fill_buf() {
            Ok([]) => return None,
            Ok(_) => {}
            Err(e) => return Some(Err(e.into())),
        }
        Some(read_binary_frame(&mut self.inner))
    }
}

/// Reads exactly one binary frame from a [`BufRead`].
fn read_binary_frame<R: BufRead>(r: &mut R) -> Result<LogRecord, HttplogError> {
    // Version byte first — it determines the fixed-part length — then the
    // rest of the fixed part (see codec::binary layout), then the UA
    // suffix.
    let mut version = [0u8; 1];
    read_exact_frame(r, &mut version)?;
    let [version] = version;
    let fixed = binary::fixed_len(version)
        .ok_or(binary::BinaryDecodeError::UnsupportedVersion { version })?;
    let mut frame = vec![0u8; fixed];
    if let Some(first) = frame.first_mut() {
        *first = version;
    }
    read_exact_frame(r, &mut frame[1..])?;
    let ua_len = u16::from_le_bytes([frame[fixed - 2], frame[fixed - 1]]) as usize;
    frame.resize(fixed + ua_len, 0);
    read_exact_frame(r, &mut frame[fixed..])?;
    let mut slice = &frame[..];
    binary::decode(&mut slice).map_err(HttplogError::from)
}

/// Whether the stream is still positioned at a record boundary after `e`,
/// so a resilient reader may continue past it.
fn error_is_resumable(e: &HttplogError) -> bool {
    match e {
        HttplogError::TextDecode(_) => true,
        HttplogError::BinaryDecode(inner) => !matches!(
            inner,
            binary::BinaryDecodeError::Truncated
                | binary::BinaryDecodeError::UnsupportedVersion { .. }
        ),
        _ => false,
    }
}

/// Like [`Read::read_exact`], but reports a clean truncation as the typed
/// [`binary::BinaryDecodeError::Truncated`] instead of a bare IO error.
fn read_exact_frame<R: BufRead>(r: &mut R, buf: &mut [u8]) -> Result<(), HttplogError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            Err(binary::BinaryDecodeError::Truncated.into())
        }
        Err(e) => Err(e.into()),
    }
}

impl<R: Read> Iterator for LogReader<R> {
    type Item = Result<LogRecord, HttplogError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let item = match self.format {
            Format::Text => self.next_text(),
            Format::Binary => self.next_binary(),
        };
        match &item {
            None => self.done = true,
            // Stop after the first error unless the reader is resilient
            // and the stream is still at a record boundary.
            Some(Err(e)) if self.fail_fast || !error_is_resumable(e) => self.done = true,
            _ => {}
        }
        item
    }
}

/// Writes all records to a sink in one call, returning the count.
///
/// # Errors
///
/// Propagates the first IO/encoding error.
pub fn write_all<'a, W, I>(sink: W, format: Format, records: I) -> Result<u64, HttplogError>
where
    W: Write,
    I: IntoIterator<Item = &'a LogRecord>,
{
    let mut w = LogWriter::new(sink, format);
    for r in records {
        w.write(r)?;
    }
    w.flush()?;
    Ok(w.written())
}

/// Reads every record from a source into a vector.
///
/// # Errors
///
/// Propagates the first IO/decoding error.
pub fn read_all<R: Read>(source: R, format: Format) -> Result<Vec<LogRecord>, HttplogError> {
    LogReader::new(source, format).collect()
}

/// Converts a row-codec record stream into a
/// [columnar](crate::codec::columnar) shard directory, returning the
/// record count. Memory is bounded by one shard's column buffers.
///
/// # Errors
///
/// Propagates the first decode/IO error from either side.
pub fn transcode_to_columnar<R: Read>(
    source: R,
    format: Format,
    dir: &std::path::Path,
    prefix: &str,
    rows_per_shard: usize,
) -> Result<u64, HttplogError> {
    let mut writer =
        crate::shard::ColumnarDirWriter::<LogRecord>::new(dir, prefix, rows_per_shard)?;
    for record in LogReader::new(source, format) {
        writer.push(&record?)?;
    }
    let (rows, _) = writer.finish()?;
    Ok(rows)
}

/// Converts a columnar shard directory back into a row-codec stream (the
/// row codecs remain the interchange formats), returning the record
/// count. Memory is bounded by one decode batch.
///
/// # Errors
///
/// Propagates the first decode/encode/IO error from either side.
pub fn transcode_from_columnar<W: Write>(
    dir: &std::path::Path,
    prefix: &str,
    sink: W,
    format: Format,
) -> Result<u64, HttplogError> {
    use crate::codec::columnar::ShardFilter;
    let reader = crate::shard::ColumnarDirReader::<LogRecord>::open(dir, prefix)?;
    let mut writer = LogWriter::new(sink, format);
    let mut first_err = None;
    reader.scan(&ShardFilter::all(), 0, |batch| {
        if first_err.is_some() {
            return;
        }
        for record in batch {
            if let Err(e) = writer.write(record) {
                first_err = Some(e);
                return;
            }
        }
    })?;
    if let Some(e) = first_err {
        return Err(e);
    }
    writer.flush()?;
    Ok(writer.written())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::binary::BinaryDecodeError;
    use crate::codec::text::TextDecodeError;

    fn sample_records(n: u64) -> Vec<LogRecord> {
        (0..n)
            .map(|i| {
                let mut r = LogRecord::example();
                r.timestamp += i;
                r.object = crate::ids::ObjectId::new(i);
                r.user_agent = format!("agent {i} \t with tab");
                r
            })
            .collect()
    }

    #[test]
    fn text_roundtrip_via_io() {
        let records = sample_records(25);
        let mut buf = Vec::new();
        let n = write_all(&mut buf, Format::Text, &records).unwrap();
        assert_eq!(n, 25);
        let back = read_all(&buf[..], Format::Text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn binary_roundtrip_via_io() {
        let records = sample_records(25);
        let mut buf = Vec::new();
        write_all(&mut buf, Format::Binary, &records).unwrap();
        let back = read_all(&buf[..], Format::Binary).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_input() {
        assert!(read_all(&[][..], Format::Text).unwrap().is_empty());
        assert!(read_all(&[][..], Format::Binary).unwrap().is_empty());
    }

    #[test]
    fn blank_lines_skipped() {
        let records = sample_records(2);
        let mut buf = Vec::new();
        write_all(&mut buf, Format::Text, &records).unwrap();
        let with_blanks = format!("\n{}\n\n", String::from_utf8(buf).unwrap().trim_end());
        let back = read_all(with_blanks.as_bytes(), Format::Text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn corrupt_text_line_yields_typed_error_once() {
        let mut reader = LogReader::text("garbage line\n".as_bytes());
        match reader.next().unwrap() {
            Err(HttplogError::TextDecode(TextDecodeError::InvalidField { field, .. })) => {
                assert_eq!(field, "timestamp");
            }
            other => panic!("expected a text decode error, got {other:?}"),
        }
        assert!(reader.next().is_none(), "reader stops after an error");
    }

    #[test]
    fn truncated_binary_stream_yields_typed_error() {
        let records = sample_records(1);
        let mut buf = Vec::new();
        write_all(&mut buf, Format::Binary, &records).unwrap();
        buf.truncate(buf.len() - 3);
        match read_all(&buf[..], Format::Binary) {
            Err(HttplogError::BinaryDecode(BinaryDecodeError::Truncated)) => {}
            other => panic!("expected a truncation error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_binary_header_yields_typed_error() {
        let records = sample_records(1);
        let mut buf = Vec::new();
        write_all(&mut buf, Format::Binary, &records).unwrap();
        buf.truncate(10); // inside the fixed-size header
        match read_all(&buf[..], Format::Binary) {
            Err(HttplogError::BinaryDecode(BinaryDecodeError::Truncated)) => {}
            other => panic!("expected a truncation error, got {other:?}"),
        }
    }

    #[test]
    fn bad_binary_record_yields_typed_error() {
        let records = sample_records(2);
        let mut buf = Vec::new();
        write_all(&mut buf, Format::Binary, &records).unwrap();
        buf[0] = 99; // clobber the version byte of the first frame
        match read_all(&buf[..], Format::Binary) {
            Err(HttplogError::BinaryDecode(BinaryDecodeError::UnsupportedVersion {
                version: 99,
            })) => {}
            other => panic!("expected a version error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_ua_yields_encode_error() {
        let mut record = LogRecord::example();
        record.user_agent = "x".repeat(70_000);
        let mut w = LogWriter::binary(Vec::new());
        match w.write(&record) {
            Err(e @ HttplogError::Encode(_)) => assert!(e.is_data_error()),
            other => panic!("expected an encode error, got {other:?}"),
        }
        assert_eq!(w.written(), 0, "failed writes are not counted");
    }

    #[test]
    fn resilient_text_reader_skips_corrupt_lines() {
        let records = sample_records(2);
        let mut buf = Vec::new();
        write_all(&mut buf, Format::Text, &records[..1]).unwrap();
        buf.extend_from_slice(b"garbage line\n");
        write_all(&mut buf, Format::Text, &records[1..]).unwrap();

        let items: Vec<_> = LogReader::text(&buf[..]).resilient().collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_ref().unwrap(), &records[0]);
        assert!(items[1].is_err());
        assert_eq!(items[2].as_ref().unwrap(), &records[1]);
    }

    #[test]
    fn resilient_binary_reader_skips_bad_frames() {
        let records = sample_records(3);
        let mut buf = Vec::new();
        write_all(&mut buf, Format::Binary, &records).unwrap();
        // Clobber the format byte of the second frame (frame length =
        // fixed part + UA bytes; offset 19 within the frame).
        let frame_len = buf.len() / 3;
        buf[frame_len + 19] = 200;

        let items: Vec<_> = LogReader::binary(&buf[..]).resilient().collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_ref().unwrap(), &records[0]);
        assert!(items[1].is_err());
        assert_eq!(items[2].as_ref().unwrap(), &records[2]);
    }

    #[test]
    fn resilient_reader_still_stops_on_truncation() {
        let records = sample_records(2);
        let mut buf = Vec::new();
        write_all(&mut buf, Format::Binary, &records).unwrap();
        buf.truncate(buf.len() - 3);
        let items: Vec<_> = LogReader::binary(&buf[..]).resilient().collect();
        assert_eq!(items.len(), 2);
        assert!(items[0].is_ok());
        assert!(items[1].is_err(), "truncated tail is a terminal error");
    }

    #[test]
    fn writer_counts_and_into_inner() {
        let records = sample_records(3);
        let mut w = LogWriter::text(Vec::new());
        for r in &records {
            w.write(r).unwrap();
        }
        assert_eq!(w.written(), 3);
        let buf = w.into_inner();
        assert_eq!(read_all(&buf[..], Format::Text).unwrap().len(), 3);
    }
}
