//! Anonymization of personally identifiable log fields.
//!
//! The paper (§III): *"All personally identifiable information in the HTTP
//! logs (e.g., IP addresses) is anonymized to protect the privacy of end
//! users without affecting the usefulness of our analysis."*
//!
//! URLs and user identities are hashed with salted FNV-1a (64-bit) followed
//! by a SplitMix64 finalizer for avalanche. The salt is secret per
//! deployment, making dictionary reversal of common URLs impractical while
//! keeping equal inputs equal (so per-object and per-user aggregation still
//! works).

use crate::ids::{ObjectId, UserId};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Salted one-way hasher mapping raw URLs and client identities to opaque
/// ids.
///
/// # Example
///
/// ```
/// use oat_httplog::Anonymizer;
///
/// let anon = Anonymizer::with_salt(42);
/// let a = anon.object_id("http://example.test/video/123.mp4");
/// let b = anon.object_id("http://example.test/video/123.mp4");
/// assert_eq!(a, b); // deterministic
/// let other = Anonymizer::with_salt(43);
/// assert_ne!(a, other.object_id("http://example.test/video/123.mp4"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anonymizer {
    salt: u64,
}

impl Anonymizer {
    /// Creates an anonymizer with the given secret salt.
    pub const fn with_salt(salt: u64) -> Self {
        Self { salt }
    }

    /// Hashes a raw object URL into an [`ObjectId`].
    pub fn object_id(&self, url: &str) -> ObjectId {
        ObjectId::new(self.hash(url.as_bytes(), 0x0b17_c0de))
    }

    /// Hashes a client identity (e.g. `ip|user-agent`) into a [`UserId`].
    pub fn user_id(&self, identity: &str) -> UserId {
        UserId::new(self.hash(identity.as_bytes(), 0x5ee_d5a1f))
    }

    /// Salted FNV-1a with SplitMix64 finalization; `domain` separates the
    /// URL and user hash spaces.
    fn hash(&self, data: &[u8], domain: u64) -> u64 {
        let mut h = FNV_OFFSET ^ self.salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ domain;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        splitmix64(h)
    }
}

impl Default for Anonymizer {
    /// An anonymizer with a fixed, documented salt — suitable only for
    /// tests and examples. Production deployments must use a secret salt.
    fn default() -> Self {
        Self::with_salt(0x0a7_0a70)
    }
}

/// SplitMix64 finalizer: full-avalanche bit mixing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_salt() {
        let a = Anonymizer::with_salt(1);
        assert_eq!(a.object_id("u"), a.object_id("u"));
        assert_eq!(a.user_id("1.2.3.4|UA"), a.user_id("1.2.3.4|UA"));
    }

    #[test]
    fn different_salts_differ() {
        let a = Anonymizer::with_salt(1);
        let b = Anonymizer::with_salt(2);
        assert_ne!(a.object_id("same-url"), b.object_id("same-url"));
    }

    #[test]
    fn domain_separation() {
        // The same string must hash differently as a URL vs as a user id.
        let a = Anonymizer::with_salt(9);
        assert_ne!(a.object_id("x").raw(), a.user_id("x").raw());
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        let a = Anonymizer::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u32 {
            let id = a.object_id(&format!("http://site.test/obj/{i}.jpg"));
            seen.insert(id.raw());
        }
        assert_eq!(seen.len(), 100_000, "unexpected hash collisions");
    }

    #[test]
    fn avalanche_on_single_byte_change() {
        let a = Anonymizer::default();
        let x = a.object_id("object-A").raw();
        let y = a.object_id("object-B").raw();
        let differing_bits = (x ^ y).count_ones();
        assert!(differing_bits > 16, "weak diffusion: {differing_bits} bits");
    }

    #[test]
    fn empty_input_supported() {
        let a = Anonymizer::default();
        let _ = a.object_id("");
        let _ = a.user_id("");
    }
}
