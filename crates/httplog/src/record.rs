//! The core log-record schema.

use crate::content::FileFormat;
use crate::ids::{ObjectId, PopId, PublisherId, UserId};
use crate::status::{CacheStatus, DegradedServe, HttpStatus};
use crate::ContentClass;
use serde::{Deserialize, Serialize};

/// One HTTP request/response pair as logged by a CDN edge server.
///
/// This is a passive, C-spirit data record: all fields are public.
/// Identifier fields are already anonymized (see
/// [`Anonymizer`](crate::anonymize::Anonymizer)); the record never carries a
/// raw URL or client IP.
///
/// # Example
///
/// ```
/// use oat_httplog::{ContentClass, LogRecord};
///
/// let r = LogRecord::example();
/// assert_eq!(r.content_class(), ContentClass::Video);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Request arrival time, seconds since the Unix epoch (UTC).
    pub timestamp: u64,
    /// The publisher (website) the object belongs to.
    pub publisher: PublisherId,
    /// Hashed object URL.
    pub object: ObjectId,
    /// Object file format (from the URL extension / `Content-Type`).
    pub format: FileFormat,
    /// Full object size in bytes.
    pub object_size: u64,
    /// Bytes actually served in this response (≤ `object_size` for range
    /// requests, 0 for bodyless responses such as 304).
    pub bytes_served: u64,
    /// Anonymized end-user identifier.
    pub user: UserId,
    /// Raw `User-Agent` header value.
    pub user_agent: String,
    /// Edge cache status.
    pub cache_status: CacheStatus,
    /// HTTP response status code.
    pub status: HttpStatus,
    /// The PoP (edge data center) that served the request.
    pub pop: PopId,
    /// Coarse client UTC offset in seconds (from pre-anonymization
    /// geolocation), used for local-time analyses such as Figure 3.
    pub tz_offset_secs: i32,
    /// Degradation path taken by fault handling, if any
    /// ([`DegradedServe::None`] for healthy serves).
    #[serde(default)]
    pub degraded: DegradedServe,
    /// Origin retry attempts spent on this response beyond the first
    /// (0 for hits and for first-try fetches).
    #[serde(default)]
    pub retries: u8,
}

impl LogRecord {
    /// The paper's content category for this record's format.
    pub fn content_class(&self) -> ContentClass {
        self.format.class()
    }

    /// Local (publisher-visitor) timestamp: UTC shifted by the client's
    /// timezone offset. Saturates at zero rather than underflowing.
    pub fn local_timestamp(&self) -> u64 {
        if self.tz_offset_secs >= 0 {
            self.timestamp.saturating_add(self.tz_offset_secs as u64)
        } else {
            self.timestamp
                .saturating_sub(self.tz_offset_secs.unsigned_abs() as u64)
        }
    }

    /// Hour-of-day (0–23) in the client's local time.
    pub fn local_hour(&self) -> u8 {
        ((self.local_timestamp() / 3600) % 24) as u8
    }

    /// A small fully-populated record for docs and tests.
    pub fn example() -> Self {
        Self {
            timestamp: 1_444_435_200, // 2015-10-10 00:00:00 UTC
            publisher: PublisherId::new(1),
            object: ObjectId::new(0xDEAD_BEEF_CAFE_F00D),
            format: FileFormat::Mp4,
            object_size: 25_000_000,
            bytes_served: 2_000_000,
            user: UserId::new(0x1234_5678_9ABC_DEF0),
            user_agent: "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 \
                         (KHTML, like Gecko) Chrome/46.0.2490.86 Safari/537.36"
                .to_string(),
            cache_status: CacheStatus::Hit,
            status: HttpStatus::PARTIAL_CONTENT,
            pop: PopId::new(3),
            tz_offset_secs: -5 * 3600,
            degraded: DegradedServe::None,
            retries: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_is_consistent() {
        let r = LogRecord::example();
        assert_eq!(r.content_class(), ContentClass::Video);
        assert!(r.bytes_served <= r.object_size);
        assert!(r.status.carries_body());
    }

    #[test]
    fn local_time_positive_offset() {
        let mut r = LogRecord::example();
        r.timestamp = 10 * 3600; // 10:00 UTC
        r.tz_offset_secs = 2 * 3600;
        assert_eq!(r.local_timestamp(), 12 * 3600);
        assert_eq!(r.local_hour(), 12);
    }

    #[test]
    fn local_time_negative_offset_wraps_day() {
        let mut r = LogRecord::example();
        r.timestamp = 86_400 + 2 * 3600; // day 2, 02:00 UTC
        r.tz_offset_secs = -5 * 3600;
        assert_eq!(r.local_hour(), 21); // previous local day
    }

    #[test]
    fn local_time_saturates() {
        let mut r = LogRecord::example();
        r.timestamp = 100;
        r.tz_offset_secs = -3600;
        assert_eq!(r.local_timestamp(), 0);
        r.timestamp = u64::MAX;
        r.tz_offset_secs = 3600;
        assert_eq!(r.local_timestamp(), u64::MAX);
    }
}
