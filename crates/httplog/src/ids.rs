//! Typed identifiers used throughout the log schema.
//!
//! Newtypes keep publisher ids, hashed object URLs, anonymized user ids and
//! PoP ids statically distinct (C-NEWTYPE): a `UserId` can never be passed
//! where an `ObjectId` is expected.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
            Serialize, Deserialize,
        )]
        pub struct $name($inner);

        impl $name {
            /// Wraps a raw id value.
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// The raw id value.
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $inner {
            fn from(id: $name) -> Self {
                id.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// A content publisher (website) identifier.
    ///
    /// The paper anonymizes publisher names; sites are referred to by codes
    /// such as `V-1`, `P-2`, `S-1`.
    PublisherId,
    u16
);

id_type!(
    /// A hashed object URL. The CDN logs carry only the hash, never the raw
    /// URL.
    ObjectId,
    u64
);

id_type!(
    /// An anonymized end-user identifier (hashed from the client IP and UA
    /// before the logs leave the CDN).
    UserId,
    u64
);

id_type!(
    /// A CDN point-of-presence (edge data-center) identifier.
    PopId,
    u16
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let p = PublisherId::new(7);
        assert_eq!(p.raw(), 7);
        assert_eq!(u16::from(p), 7);
        assert_eq!(PublisherId::from(7u16), p);
        assert_eq!(p.to_string(), "7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = std::collections::HashSet::new();
        set.insert(ObjectId::new(1));
        set.insert(ObjectId::new(1));
        set.insert(ObjectId::new(2));
        assert_eq!(set.len(), 2);
        assert!(UserId::new(1) < UserId::new(2));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(PopId::default().raw(), 0);
    }
}
