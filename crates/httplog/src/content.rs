//! Content-type taxonomy: file formats and the paper's three categories.
//!
//! The paper buckets objects into **video** (FLV, MP4, MPG, AVI, WMV),
//! **image** (JPG, PNG, GIF, TIFF, BMP) and **other** (text, audio, HTML,
//! CSS, XML, JS) — see §IV-A.

use serde::{Deserialize, Serialize};

/// The paper's three content categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ContentClass {
    /// Video formats (FLV, MP4, …).
    Video,
    /// Image formats (JPG, GIF, …).
    Image,
    /// Everything else (markup, scripts, audio, …).
    Other,
}

impl ContentClass {
    /// All classes in reporting order.
    pub const ALL: [ContentClass; 3] = [
        ContentClass::Video,
        ContentClass::Image,
        ContentClass::Other,
    ];
}

impl std::fmt::Display for ContentClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ContentClass::Video => "video",
            ContentClass::Image => "image",
            ContentClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// Concrete object file formats observed in the logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // Variant names are self-describing file formats.
pub enum FileFormat {
    // Video.
    Flv,
    Mp4,
    Mpg,
    Avi,
    Wmv,
    Webm,
    // Image.
    Jpg,
    Png,
    Gif,
    Tiff,
    Bmp,
    Webp,
    // Other.
    Html,
    Css,
    Js,
    Xml,
    Json,
    Txt,
    Mp3,
    Woff,
    Bin,
}

impl FileFormat {
    /// The content category this format belongs to.
    pub const fn class(self) -> ContentClass {
        use FileFormat::*;
        match self {
            Flv | Mp4 | Mpg | Avi | Wmv | Webm => ContentClass::Video,
            Jpg | Png | Gif | Tiff | Bmp | Webp => ContentClass::Image,
            Html | Css | Js | Xml | Json | Txt | Mp3 | Woff | Bin => ContentClass::Other,
        }
    }

    /// The canonical lowercase file extension.
    pub const fn extension(self) -> &'static str {
        use FileFormat::*;
        match self {
            Flv => "flv",
            Mp4 => "mp4",
            Mpg => "mpg",
            Avi => "avi",
            Wmv => "wmv",
            Webm => "webm",
            Jpg => "jpg",
            Png => "png",
            Gif => "gif",
            Tiff => "tiff",
            Bmp => "bmp",
            Webp => "webp",
            Html => "html",
            Css => "css",
            Js => "js",
            Xml => "xml",
            Json => "json",
            Txt => "txt",
            Mp3 => "mp3",
            Woff => "woff",
            Bin => "bin",
        }
    }

    /// Parses a file extension (case-insensitive, with or without a leading
    /// dot). Unknown extensions map to [`FileFormat::Bin`].
    pub fn from_extension(ext: &str) -> Self {
        use FileFormat::*;
        let ext = ext.trim_start_matches('.');
        // Avoid allocating for the common already-lowercase case.
        let lower;
        let ext = if ext.bytes().any(|b| b.is_ascii_uppercase()) {
            lower = ext.to_ascii_lowercase();
            lower.as_str()
        } else {
            ext
        };
        match ext {
            "flv" => Flv,
            "mp4" | "m4v" => Mp4,
            "mpg" | "mpeg" => Mpg,
            "avi" => Avi,
            "wmv" => Wmv,
            "webm" => Webm,
            "jpg" | "jpeg" => Jpg,
            "png" => Png,
            "gif" => Gif,
            "tif" | "tiff" => Tiff,
            "bmp" => Bmp,
            "webp" => Webp,
            "html" | "htm" => Html,
            "css" => Css,
            "js" => Js,
            "xml" => Xml,
            "json" => Json,
            "txt" => Txt,
            "mp3" => Mp3,
            "woff" | "woff2" => Woff,
            _ => Bin,
        }
    }

    /// All formats, for exhaustive iteration in tests and generators.
    pub const ALL: [FileFormat; 21] = [
        FileFormat::Flv,
        FileFormat::Mp4,
        FileFormat::Mpg,
        FileFormat::Avi,
        FileFormat::Wmv,
        FileFormat::Webm,
        FileFormat::Jpg,
        FileFormat::Png,
        FileFormat::Gif,
        FileFormat::Tiff,
        FileFormat::Bmp,
        FileFormat::Webp,
        FileFormat::Html,
        FileFormat::Css,
        FileFormat::Js,
        FileFormat::Xml,
        FileFormat::Json,
        FileFormat::Txt,
        FileFormat::Mp3,
        FileFormat::Woff,
        FileFormat::Bin,
    ];
}

impl std::fmt::Display for FileFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.extension())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_match_paper_taxonomy() {
        assert_eq!(FileFormat::Flv.class(), ContentClass::Video);
        assert_eq!(FileFormat::Mp4.class(), ContentClass::Video);
        assert_eq!(FileFormat::Jpg.class(), ContentClass::Image);
        assert_eq!(FileFormat::Gif.class(), ContentClass::Image);
        assert_eq!(FileFormat::Html.class(), ContentClass::Other);
        assert_eq!(FileFormat::Js.class(), ContentClass::Other);
        assert_eq!(FileFormat::Mp3.class(), ContentClass::Other);
    }

    #[test]
    fn extension_roundtrip() {
        for format in FileFormat::ALL {
            assert_eq!(FileFormat::from_extension(format.extension()), format);
            assert_eq!(format.to_string(), format.extension());
        }
    }

    #[test]
    fn extension_aliases_and_case() {
        assert_eq!(FileFormat::from_extension("JPEG"), FileFormat::Jpg);
        assert_eq!(FileFormat::from_extension(".PNG"), FileFormat::Png);
        assert_eq!(FileFormat::from_extension("m4v"), FileFormat::Mp4);
        assert_eq!(FileFormat::from_extension("woff2"), FileFormat::Woff);
        assert_eq!(FileFormat::from_extension("htm"), FileFormat::Html);
    }

    #[test]
    fn unknown_extension_is_bin() {
        assert_eq!(FileFormat::from_extension("exotic"), FileFormat::Bin);
        assert_eq!(FileFormat::from_extension(""), FileFormat::Bin);
        assert_eq!(FileFormat::Bin.class(), ContentClass::Other);
    }

    #[test]
    fn class_display() {
        assert_eq!(ContentClass::Video.to_string(), "video");
        assert_eq!(ContentClass::ALL.len(), 3);
    }
}
