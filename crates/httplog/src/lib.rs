//! CDN HTTP access-log schema, codecs and streaming IO.
//!
//! The paper's dataset is one week of HTTP access logs collected at the edge
//! of a major commercial CDN (§III). Each record captures one HTTP
//! request/response pair:
//!
//! > *"Each record in our trace includes information about an HTTP request,
//! > containing publisher identifier, hashed URL, object file type, object
//! > size in bytes, user agent, and the timestamp when the request was
//! > received. … Each record also includes the cache status for
//! > the requested object."*
//!
//! This crate defines that schema ([`LogRecord`]), the anonymization step
//! the paper applies to personally identifiable information
//! ([`anonymize::Anonymizer`]), a human-readable [text codec](codec::text)
//! and a compact [binary codec](codec::binary), plus buffered
//! [readers/writers](io) and [stream filters](filter).
//!
//! # Example
//!
//! ```
//! use oat_httplog::codec::text;
//! use oat_httplog::LogRecord;
//!
//! let record = LogRecord::example();
//! let line = text::encode(&record);
//! let parsed = text::decode(&line)?;
//! assert_eq!(parsed, record);
//! # Ok::<(), oat_httplog::codec::text::TextDecodeError>(())
//! ```

// `deny`, not `forbid`: `codec::columnar` opts back in for its
// alignment-checked zero-copy casts and mmap wrapper — the only module in
// the workspace allowed to (enforced by oat-lint's `unsafe-confinement`).
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod anonymize;
pub mod codec;
pub mod content;
pub mod durable;
pub mod error;
pub mod filter;
pub mod geo;
pub mod ids;
pub mod io;
pub mod manifest;
pub mod record;
pub mod request;
pub mod shard;
pub mod status;

pub use anonymize::Anonymizer;
pub use codec::columnar::{
    read_shard_footer, ColumnBuilder, ColumnarError, ColumnarRow, ColumnarShard, Schema,
    ShardChecksums, ShardFileReader, ShardFilter, ShardFooter, ZoneMap,
};
pub use content::{ContentClass, FileFormat};
pub use durable::{fnv1a64, is_enospc, write_atomic, FailAt, Fnv1a, IoLayer, IoOp, RealIo};
pub use error::HttplogError;
pub use filter::LogStreamExt;
pub use geo::Region;
pub use ids::{ObjectId, PopId, PublisherId, UserId};
pub use io::{LogReader, LogWriter};
pub use manifest::{ManifestError, ManifestShard, SpoolManifest};
pub use record::LogRecord;
pub use request::{Request, RequestKind};
pub use shard::{
    ColumnarDirReader, ColumnarDirWriter, ErrorBudget, QuarantineReport, ShardedWriter,
};
pub use status::{CacheStatus, DegradedServe, HttpStatus};
