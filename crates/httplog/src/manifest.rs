//! Spool manifests: what a columnar spool directory *should* contain.
//!
//! A spool is only trustworthy if a reader can tell (a) that generation
//! finished, (b) which shards belong to it, and (c) that it was produced
//! by the configuration the analysis expects. The `MANIFEST-{prefix}.toml`
//! file records all three: a config fingerprint (trace-config hash +
//! seed + codec version), the shard list with per-shard row counts, and
//! a completion marker. It is written atomically (see
//! [`crate::durable::write_atomic`]) as the *last* step of generation,
//! so its presence with `complete = true` certifies the whole spool;
//! an interrupted `ENOSPC` run flushes a partial manifest
//! (`complete = false`) describing whatever shards survived.
//!
//! The format is the same dependency-free TOML subset the fault-plan
//! files use: `key = value` lines, `[[shard]]` array-of-tables sections,
//! `#` comments. No TOML crate is involved.

use crate::durable::{write_atomic, IoLayer};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One shard entry in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestShard {
    /// File name relative to the spool directory (e.g. `req-000003.col`).
    pub name: String,
    /// Rows the shard holds (must match its footer).
    pub rows: u64,
}

/// The on-disk description of a columnar spool directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpoolManifest {
    /// Shard file-name prefix.
    pub prefix: String,
    /// Columnar codec version the shards were written with.
    pub codec_version: u8,
    /// Generation fingerprint (trace-config hash + seed + codec
    /// version); `0` means unfingerprinted.
    pub fingerprint: u64,
    /// Rows-per-shard knob the spool was generated with.
    pub rows_per_shard: u64,
    /// Total rows across all shards.
    pub total_rows: u64,
    /// True only when generation ran to completion.
    pub complete: bool,
    /// Shards in file-name order.
    pub shards: Vec<ManifestShard>,
}

impl SpoolManifest {
    /// The manifest path for a spool `dir`/`prefix`.
    pub fn path_for(dir: &Path, prefix: &str) -> PathBuf {
        dir.join(format!("MANIFEST-{prefix}.toml"))
    }

    /// Renders the manifest in the dependency-free TOML subset.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("# oat columnar spool manifest\n");
        out.push_str(&format!("prefix = \"{}\"\n", self.prefix));
        out.push_str(&format!("codec_version = {}\n", self.codec_version));
        out.push_str(&format!("fingerprint = {}\n", self.fingerprint));
        out.push_str(&format!("rows_per_shard = {}\n", self.rows_per_shard));
        out.push_str(&format!("total_rows = {}\n", self.total_rows));
        out.push_str(&format!("complete = {}\n", self.complete));
        for shard in &self.shards {
            out.push_str("\n[[shard]]\n");
            out.push_str(&format!("name = \"{}\"\n", shard.name));
            out.push_str(&format!("rows = {}\n", shard.rows));
        }
        out
    }

    /// Parses a manifest from the TOML subset.
    pub fn from_toml_str(text: &str) -> Result<Self, ManifestError> {
        let mut manifest = SpoolManifest {
            prefix: String::new(),
            codec_version: 0,
            fingerprint: 0,
            rows_per_shard: 0,
            total_rows: 0,
            complete: false,
            shards: Vec::new(),
        };
        let mut in_shard = false;
        let mut saw_prefix = false;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = match raw.find('#') {
                Some(at) => &raw[..at],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[shard]]" {
                in_shard = true;
                manifest.shards.push(ManifestShard {
                    name: String::new(),
                    rows: 0,
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(ManifestError::at(lineno, format!("unknown section {line}")));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| ManifestError::at(lineno, "expected key = value".to_string()))?;
            let (key, value) = (key.trim(), value.trim());
            if in_shard {
                let shard = manifest
                    .shards
                    .last_mut()
                    .ok_or_else(|| ManifestError::at(lineno, "no open shard".to_string()))?;
                match key {
                    "name" => shard.name = parse_string(lineno, value)?,
                    "rows" => shard.rows = parse_u64(lineno, value)?,
                    other => {
                        return Err(ManifestError::at(lineno, format!("unknown key {other}")));
                    }
                }
            } else {
                match key {
                    "prefix" => {
                        manifest.prefix = parse_string(lineno, value)?;
                        saw_prefix = true;
                    }
                    "codec_version" => {
                        let v = parse_u64(lineno, value)?;
                        manifest.codec_version = u8::try_from(v).map_err(|_| {
                            ManifestError::at(lineno, format!("codec_version {v} out of range"))
                        })?;
                    }
                    "fingerprint" => manifest.fingerprint = parse_u64(lineno, value)?,
                    "rows_per_shard" => manifest.rows_per_shard = parse_u64(lineno, value)?,
                    "total_rows" => manifest.total_rows = parse_u64(lineno, value)?,
                    "complete" => {
                        manifest.complete = match value {
                            "true" => true,
                            "false" => false,
                            other => {
                                return Err(ManifestError::at(
                                    lineno,
                                    format!("expected true/false, got {other}"),
                                ));
                            }
                        };
                    }
                    other => {
                        return Err(ManifestError::at(lineno, format!("unknown key {other}")));
                    }
                }
            }
        }
        if !saw_prefix {
            return Err(ManifestError::at(0, "missing prefix".to_string()));
        }
        for shard in &manifest.shards {
            if shard.name.is_empty() {
                return Err(ManifestError::at(0, "shard without name".to_string()));
            }
        }
        Ok(manifest)
    }

    /// Writes the manifest atomically into `dir`.
    pub fn store(&self, io: &dyn IoLayer, dir: &Path) -> io::Result<()> {
        let text = self.to_toml();
        write_atomic(io, &Self::path_for(dir, &self.prefix), |w| {
            w.write_all(text.as_bytes())
        })
    }

    /// Loads the manifest for `dir`/`prefix`; `Ok(None)` when absent.
    pub fn load(dir: &Path, prefix: &str) -> Result<Option<Self>, ManifestError> {
        let path = Self::path_for(dir, prefix);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ManifestError::Io(e)),
        };
        let manifest = Self::from_toml_str(&text)?;
        if manifest.prefix != prefix {
            return Err(ManifestError::at(
                0,
                format!(
                    "manifest prefix {:?} does not match file name prefix {prefix:?}",
                    manifest.prefix
                ),
            ));
        }
        Ok(Some(manifest))
    }
}

fn parse_string(lineno: usize, value: &str) -> Result<String, ManifestError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ManifestError::at(lineno, format!("expected quoted string, got {value}")))?;
    if inner.contains('"') {
        return Err(ManifestError::at(
            lineno,
            "embedded quotes unsupported".to_string(),
        ));
    }
    Ok(inner.to_string())
}

fn parse_u64(lineno: usize, value: &str) -> Result<u64, ManifestError> {
    value
        .parse::<u64>()
        .map_err(|_| ManifestError::at(lineno, format!("expected integer, got {value}")))
}

/// Why a manifest failed to load or verify.
#[derive(Debug)]
pub enum ManifestError {
    /// Underlying I/O failure (not a data error).
    Io(io::Error),
    /// Malformed manifest text (line 0 = whole-file problem).
    Parse {
        /// 1-based line, 0 for whole-file errors.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// No manifest file where one is required.
    Missing(PathBuf),
    /// Manifest present but generation never completed.
    Incomplete,
    /// Spool was generated under a different configuration.
    FingerprintMismatch {
        /// Fingerprint the caller expected.
        expected: u64,
        /// Fingerprint recorded in the manifest.
        found: u64,
    },
    /// Directory contents disagree with the shard list.
    ShardMismatch(String),
}

impl ManifestError {
    fn at(line: usize, msg: String) -> Self {
        ManifestError::Parse { line, msg }
    }

    /// True when the manifest (or spool) data is bad, as opposed to an
    /// environmental I/O failure.
    pub fn is_data_error(&self) -> bool {
        !matches!(self, ManifestError::Io(_))
    }
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest io error: {e}"),
            ManifestError::Parse { line: 0, msg } => write!(f, "manifest parse error: {msg}"),
            ManifestError::Parse { line, msg } => {
                write!(f, "manifest parse error at line {line}: {msg}")
            }
            ManifestError::Missing(path) => {
                write!(f, "manifest missing: {}", path.display())
            }
            ManifestError::Incomplete => {
                write!(
                    f,
                    "manifest marks the spool incomplete (interrupted generation)"
                )
            }
            ManifestError::FingerprintMismatch { expected, found } => write!(
                f,
                "spool fingerprint mismatch: expected {expected:#018x}, manifest has {found:#018x}"
            ),
            ManifestError::ShardMismatch(msg) => write!(f, "spool/manifest disagree: {msg}"),
        }
    }
}

impl std::error::Error for ManifestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManifestError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ManifestError {
    fn from(e: io::Error) -> Self {
        ManifestError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::RealIo;

    fn sample() -> SpoolManifest {
        SpoolManifest {
            prefix: "req".to_string(),
            codec_version: 2,
            fingerprint: 0xDEAD_BEEF,
            rows_per_shard: 1_000,
            total_rows: 2_345,
            complete: true,
            shards: vec![
                ManifestShard {
                    name: "req-000000.col".to_string(),
                    rows: 1_000,
                },
                ManifestShard {
                    name: "req-000001.col".to_string(),
                    rows: 1_000,
                },
                ManifestShard {
                    name: "req-000002.col".to_string(),
                    rows: 345,
                },
            ],
        }
    }

    #[test]
    fn toml_round_trip() {
        let manifest = sample();
        let parsed = SpoolManifest::from_toml_str(&manifest.to_toml()).expect("parse");
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn store_and_load() {
        let dir =
            std::env::temp_dir().join(format!("oat-manifest-roundtrip-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        assert!(SpoolManifest::load(&dir, "req").expect("load").is_none());
        let manifest = sample();
        manifest.store(&RealIo, &dir).expect("store");
        let loaded = SpoolManifest::load(&dir, "req")
            .expect("load")
            .expect("present");
        assert_eq!(loaded, manifest);
        // Wrong prefix: no such manifest file.
        assert!(SpoolManifest::load(&dir, "other").expect("load").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err =
            SpoolManifest::from_toml_str("prefix = \"req\"\nbogus line\n").expect_err("malformed");
        assert!(matches!(err, ManifestError::Parse { line: 2, .. }), "{err}");
        assert!(err.is_data_error());
        let err = SpoolManifest::from_toml_str("prefix = \"req\"\nrows_per_shard = abc\n")
            .expect_err("bad integer");
        assert!(matches!(err, ManifestError::Parse { line: 2, .. }), "{err}");
        let err = SpoolManifest::from_toml_str("codec_version = 2\n").expect_err("no prefix");
        assert!(matches!(err, ManifestError::Parse { line: 0, .. }), "{err}");
        let err = SpoolManifest::from_toml_str("prefix = \"req\"\n[section]\n")
            .expect_err("unknown section");
        assert!(matches!(err, ManifestError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let text = "\n# header\n  prefix = \"req\"  # inline\ncomplete = true\n\n[[shard]]\nname = \"req-000000.col\"\nrows = 7\n";
        let parsed = SpoolManifest::from_toml_str(text).expect("parse");
        assert_eq!(parsed.prefix, "req");
        assert!(parsed.complete);
        assert_eq!(parsed.shards.len(), 1);
        assert_eq!(parsed.shards[0].rows, 7);
    }
}
