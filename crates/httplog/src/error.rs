//! Crate-wide typed error for streaming IO.
//!
//! The codecs keep their own precise error types
//! ([`TextDecodeError`](crate::codec::text::TextDecodeError),
//! [`BinaryDecodeError`](crate::codec::binary::BinaryDecodeError),
//! [`BinaryEncodeError`](crate::codec::binary::BinaryEncodeError));
//! [`HttplogError`] is the union the streaming readers/writers and the shard
//! utilities propagate, so callers can distinguish "the disk failed" from
//! "the record is malformed" without string matching.

use crate::codec::binary::{BinaryDecodeError, BinaryEncodeError};
use crate::codec::columnar::ColumnarError;
use crate::codec::text::TextDecodeError;
use crate::manifest::ManifestError;
use std::fmt;
use std::io;

/// Error produced by [`io`](crate::io) and [`shard`](crate::shard)
/// operations.
#[derive(Debug)]
pub enum HttplogError {
    /// An underlying IO operation failed.
    Io(io::Error),
    /// A text-format line failed to decode.
    TextDecode(TextDecodeError),
    /// A binary frame failed to decode.
    BinaryDecode(BinaryDecodeError),
    /// A record could not be encoded as a binary frame.
    Encode(BinaryEncodeError),
    /// A configuration value was rejected (e.g. a zero shard interval).
    InvalidConfig(&'static str),
    /// A lossy shard read quarantined more records than its error budget
    /// allows (see [`read_merged_lossy`](crate::shard::read_merged_lossy)).
    ErrorBudgetExceeded {
        /// Corrupt/truncated records quarantined before giving up.
        quarantined: u64,
        /// The configured budget that was exceeded.
        budget: u64,
    },
    /// A columnar shard failed to read or write (see
    /// [`codec::columnar`](crate::codec::columnar)).
    Columnar(ColumnarError),
    /// A spool manifest is missing, malformed, or disagrees with the
    /// shard directory (see [`manifest`](crate::manifest)).
    Manifest(ManifestError),
}

impl HttplogError {
    /// True when the input itself (not the environment) is at fault: a
    /// malformed record or an unencodable one.
    pub fn is_data_error(&self) -> bool {
        match self {
            Self::TextDecode(_)
            | Self::BinaryDecode(_)
            | Self::Encode(_)
            | Self::ErrorBudgetExceeded { .. } => true,
            Self::Columnar(e) => e.is_data_error(),
            Self::Manifest(e) => e.is_data_error(),
            Self::Io(_) | Self::InvalidConfig(_) => false,
        }
    }
}

impl fmt::Display for HttplogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::TextDecode(e) => write!(f, "text decode error: {e}"),
            Self::BinaryDecode(e) => write!(f, "binary decode error: {e}"),
            Self::Encode(e) => write!(f, "encode error: {e}"),
            Self::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            Self::ErrorBudgetExceeded {
                quarantined,
                budget,
            } => write!(
                f,
                "quarantined {quarantined} corrupt records, exceeding the error budget of {budget}"
            ),
            Self::Columnar(e) => write!(f, "columnar shard error: {e}"),
            Self::Manifest(e) => write!(f, "spool manifest error: {e}"),
        }
    }
}

impl std::error::Error for HttplogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::TextDecode(e) => Some(e),
            Self::BinaryDecode(e) => Some(e),
            Self::Encode(e) => Some(e),
            Self::InvalidConfig(_) => None,
            Self::ErrorBudgetExceeded { .. } => None,
            Self::Columnar(e) => Some(e),
            Self::Manifest(e) => Some(e),
        }
    }
}

impl From<io::Error> for HttplogError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<TextDecodeError> for HttplogError {
    fn from(e: TextDecodeError) -> Self {
        Self::TextDecode(e)
    }
}

impl From<BinaryDecodeError> for HttplogError {
    fn from(e: BinaryDecodeError) -> Self {
        Self::BinaryDecode(e)
    }
}

impl From<BinaryEncodeError> for HttplogError {
    fn from(e: BinaryEncodeError) -> Self {
        Self::Encode(e)
    }
}

/// Columnar I/O failures surface as [`HttplogError::Io`] so environmental
/// and data faults stay distinguishable at this level too.
impl From<ColumnarError> for HttplogError {
    fn from(e: ColumnarError) -> Self {
        match e {
            ColumnarError::Io(inner) => Self::Io(inner),
            other => Self::Columnar(other),
        }
    }
}

/// Manifest I/O failures surface as [`HttplogError::Io`], like columnar
/// ones; everything else stays a (data-level) manifest error.
impl From<ManifestError> for HttplogError {
    fn from(e: ManifestError) -> Self {
        match e {
            ManifestError::Io(inner) => Self::Io(inner),
            other => Self::Manifest(other),
        }
    }
}

/// Lossy downgrade for callers living in `io::Result` land: decode errors
/// become [`io::ErrorKind::InvalidData`], encode errors
/// [`io::ErrorKind::InvalidInput`].
impl From<HttplogError> for io::Error {
    fn from(e: HttplogError) -> Self {
        match e {
            HttplogError::Io(inner) => inner,
            HttplogError::TextDecode(_) | HttplogError::BinaryDecode(_) => {
                io::Error::new(io::ErrorKind::InvalidData, e.to_string())
            }
            HttplogError::Encode(_) | HttplogError::InvalidConfig(_) => {
                io::Error::new(io::ErrorKind::InvalidInput, e.to_string())
            }
            HttplogError::ErrorBudgetExceeded { .. }
            | HttplogError::Columnar(_)
            | HttplogError::Manifest(_) => {
                io::Error::new(io::ErrorKind::InvalidData, e.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source_chain() {
        let e = HttplogError::from(TextDecodeError::MissingField { field: "object" });
        assert!(e.to_string().contains("object"));
        assert!(e.source().is_some());
        assert!(e.is_data_error());

        let io_err = HttplogError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(!io_err.is_data_error());
    }

    #[test]
    fn downgrade_to_io_error_keeps_kind() {
        let decode: io::Error = HttplogError::from(BinaryDecodeError::Truncated).into();
        assert_eq!(decode.kind(), io::ErrorKind::InvalidData);

        let encode: io::Error =
            HttplogError::from(BinaryEncodeError::UserAgentTooLong { len: 70_000 }).into();
        assert_eq!(encode.kind(), io::ErrorKind::InvalidInput);

        let original = io::Error::new(io::ErrorKind::PermissionDenied, "nope");
        let roundtrip: io::Error = HttplogError::from(original).into();
        assert_eq!(roundtrip.kind(), io::ErrorKind::PermissionDenied);
    }
}
