//! Pre-response request events.
//!
//! A [`Request`] is what a CDN edge sees *before* deciding how to respond:
//! the workload generator (`oat-workload`) emits these, the CDN simulator
//! (`oat-cdnsim`) serves them and produces finished [`LogRecord`]s. Keeping
//! the type here lets both crates share it without depending on each other.

use crate::content::FileFormat;
use crate::geo::Region;
use crate::ids::{ObjectId, PublisherId, UserId};
use crate::record::LogRecord;
use crate::status::{CacheStatus, DegradedServe, HttpStatus};
use crate::{ContentClass, PopId};
use serde::{Deserialize, Serialize};

/// Video chunk size (bytes) used by players and by the CDN's per-chunk
/// caching. Range-request offsets are aligned to this.
pub const CHUNK_BYTES: u64 = 2_000_000;

/// The kind of HTTP request a client issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestKind {
    /// Plain `GET` for the full object.
    Full,
    /// Range `GET` for one chunk of the object (video streaming).
    Range {
        /// Byte offset of the requested range.
        offset: u64,
        /// Requested range length in bytes.
        length: u64,
    },
    /// Conditional `GET` (`If-Modified-Since` / `If-None-Match`): the client
    /// holds a browser-cached copy and asks whether it is still fresh.
    Conditional,
    /// Range `GET` whose offset lies beyond the object end (broken player
    /// state) — answered with `416`.
    InvalidRange,
    /// Request failing the publisher's hot-link/token check — answered with
    /// `403`.
    Hotlink,
    /// Analytics/tracking beacon — answered with `204 No Content`.
    Beacon,
}

/// One client request as it arrives at the CDN edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time, seconds since the Unix epoch (UTC).
    pub timestamp: u64,
    /// Publisher the object belongs to.
    pub publisher: PublisherId,
    /// Hashed object URL.
    pub object: ObjectId,
    /// Object file format.
    pub format: FileFormat,
    /// Full object size in bytes.
    pub object_size: u64,
    /// Anonymized user id.
    pub user: UserId,
    /// Raw user-agent header.
    pub user_agent: String,
    /// Client region (drives PoP routing).
    pub region: Region,
    /// Client UTC offset in seconds.
    pub tz_offset_secs: i32,
    /// Whether the client browses in incognito/private mode (its browser
    /// cache is discarded between sessions, so it re-fetches instead of
    /// revalidating — §V of the paper).
    pub incognito: bool,
    /// What is being asked for.
    pub kind: RequestKind,
}

impl Request {
    /// The paper's content category for this request's format.
    pub fn content_class(&self) -> ContentClass {
        self.format.class()
    }

    /// Finalizes this request into a healthy [`LogRecord`] with the
    /// response fields decided by the serving edge.
    pub fn into_record(
        self,
        pop: PopId,
        cache_status: CacheStatus,
        status: HttpStatus,
        bytes_served: u64,
    ) -> LogRecord {
        self.into_record_degraded(
            pop,
            cache_status,
            status,
            bytes_served,
            DegradedServe::None,
            0,
        )
    }

    /// Finalizes this request into a [`LogRecord`] carrying the fault
    /// model's degradation outcome and origin retry count.
    pub fn into_record_degraded(
        self,
        pop: PopId,
        cache_status: CacheStatus,
        status: HttpStatus,
        bytes_served: u64,
        degraded: DegradedServe,
        retries: u8,
    ) -> LogRecord {
        LogRecord {
            timestamp: self.timestamp,
            publisher: self.publisher,
            object: self.object,
            format: self.format,
            object_size: self.object_size,
            bytes_served,
            user: self.user,
            user_agent: self.user_agent,
            cache_status,
            status,
            pop,
            tz_offset_secs: self.tz_offset_secs,
            degraded,
            retries,
        }
    }

    /// A small fully-populated request for docs and tests.
    pub fn example() -> Self {
        Self {
            timestamp: 1_444_435_200,
            publisher: PublisherId::new(1),
            object: ObjectId::new(42),
            format: FileFormat::Mp4,
            object_size: 25_000_000,
            user: UserId::new(7),
            user_agent: "Mozilla/5.0 (X11; Linux x86_64) Firefox/41.0".to_string(),
            region: Region::Europe,
            tz_offset_secs: 3600,
            incognito: true,
            kind: RequestKind::Range {
                offset: 0,
                length: 2_000_000,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn into_record_carries_fields() {
        let req = Request::example();
        let rec = req.clone().into_record(
            PopId::new(2),
            CacheStatus::Hit,
            HttpStatus::PARTIAL_CONTENT,
            2_000_000,
        );
        assert_eq!(rec.timestamp, req.timestamp);
        assert_eq!(rec.object, req.object);
        assert_eq!(rec.pop, PopId::new(2));
        assert_eq!(rec.bytes_served, 2_000_000);
        assert_eq!(rec.status, HttpStatus::PARTIAL_CONTENT);
        assert_eq!(rec.tz_offset_secs, req.tz_offset_secs);
        assert_eq!(rec.degraded, DegradedServe::None);
        assert_eq!(rec.retries, 0);
    }

    #[test]
    fn into_record_degraded_carries_fault_fields() {
        let rec = Request::example().into_record_degraded(
            PopId::new(2),
            CacheStatus::Hit,
            HttpStatus::PARTIAL_CONTENT,
            2_000_000,
            DegradedServe::Stale,
            3,
        );
        assert_eq!(rec.degraded, DegradedServe::Stale);
        assert_eq!(rec.retries, 3);
    }

    #[test]
    fn content_class_delegates() {
        assert_eq!(Request::example().content_class(), ContentClass::Video);
    }
}
