//! Stream filters over record iterators.
//!
//! The analysis pipeline repeatedly needs "records for publisher X",
//! "records in time window Y", or "video records only". These adaptors keep
//! those selections lazy and composable.

use crate::content::ContentClass;
use crate::ids::PublisherId;
use crate::record::LogRecord;
use std::ops::Range;

/// Extension trait adding log-specific filters to any record iterator.
///
/// # Example
///
/// ```
/// use oat_httplog::{LogRecord, LogStreamExt, ContentClass};
///
/// let records = vec![LogRecord::example()];
/// let videos: Vec<_> = records
///     .into_iter()
///     .content_class(ContentClass::Video)
///     .collect();
/// assert_eq!(videos.len(), 1);
/// ```
pub trait LogStreamExt: Iterator<Item = LogRecord> + Sized {
    /// Keeps records belonging to `publisher`.
    fn publisher(self, publisher: PublisherId) -> PublisherFilter<Self> {
        PublisherFilter {
            inner: self,
            publisher,
        }
    }

    /// Keeps records whose timestamp falls in `window` (half-open, UTC
    /// seconds).
    fn time_window(self, window: Range<u64>) -> TimeWindowFilter<Self> {
        TimeWindowFilter {
            inner: self,
            window,
        }
    }

    /// Keeps records of one content class.
    fn content_class(self, class: ContentClass) -> ContentClassFilter<Self> {
        ContentClassFilter { inner: self, class }
    }
}

impl<I: Iterator<Item = LogRecord>> LogStreamExt for I {}

/// Iterator returned by [`LogStreamExt::publisher`].
#[derive(Debug)]
pub struct PublisherFilter<I> {
    inner: I,
    publisher: PublisherId,
}

impl<I: Iterator<Item = LogRecord>> Iterator for PublisherFilter<I> {
    type Item = LogRecord;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.by_ref().find(|r| r.publisher == self.publisher)
    }
}

/// Iterator returned by [`LogStreamExt::time_window`].
#[derive(Debug)]
pub struct TimeWindowFilter<I> {
    inner: I,
    window: Range<u64>,
}

impl<I: Iterator<Item = LogRecord>> Iterator for TimeWindowFilter<I> {
    type Item = LogRecord;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner
            .by_ref()
            .find(|r| self.window.contains(&r.timestamp))
    }
}

/// Iterator returned by [`LogStreamExt::content_class`].
#[derive(Debug)]
pub struct ContentClassFilter<I> {
    inner: I,
    class: ContentClass,
}

impl<I: Iterator<Item = LogRecord>> Iterator for ContentClassFilter<I> {
    type Item = LogRecord;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner
            .by_ref()
            .find(|r| r.content_class() == self.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::FileFormat;

    fn records() -> Vec<LogRecord> {
        let mut v = Vec::new();
        for i in 0..10u64 {
            let mut r = LogRecord::example();
            r.timestamp = i * 100;
            r.publisher = PublisherId::new((i % 3) as u16);
            r.format = if i % 2 == 0 {
                FileFormat::Mp4
            } else {
                FileFormat::Jpg
            };
            v.push(r);
        }
        v
    }

    #[test]
    fn publisher_filter() {
        let got: Vec<_> = records()
            .into_iter()
            .publisher(PublisherId::new(1))
            .collect();
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|r| r.publisher == PublisherId::new(1)));
    }

    #[test]
    fn time_window_filter_half_open() {
        let got: Vec<_> = records().into_iter().time_window(100..300).collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].timestamp, 100);
        assert_eq!(got[1].timestamp, 200);
    }

    #[test]
    fn content_class_filter() {
        let videos: Vec<_> = records()
            .into_iter()
            .content_class(ContentClass::Video)
            .collect();
        assert_eq!(videos.len(), 5);
        let images: Vec<_> = records()
            .into_iter()
            .content_class(ContentClass::Image)
            .collect();
        assert_eq!(images.len(), 5);
        let other: Vec<_> = records()
            .into_iter()
            .content_class(ContentClass::Other)
            .collect();
        assert!(other.is_empty());
    }

    #[test]
    fn filters_compose() {
        let got: Vec<_> = records()
            .into_iter()
            .publisher(PublisherId::new(0))
            .content_class(ContentClass::Video)
            .time_window(0..10_000)
            .collect();
        // Publishers cycle 0,1,2 and formats alternate video/image:
        // i = 0, 6 are publisher 0 + video; i = 3, 9 are publisher 0 + image.
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn empty_stream() {
        let got: Vec<_> = std::iter::empty::<LogRecord>()
            .publisher(PublisherId::new(0))
            .collect();
        assert!(got.is_empty());
    }
}
