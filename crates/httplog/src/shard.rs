//! Time-rotated log shards and out-of-core columnar shard directories.
//!
//! Production CDN logs arrive as per-interval files (hourly dumps per
//! PoP). [`ShardedWriter`] rotates output files on record-timestamp
//! boundaries, and [`read_merged`] k-way-merges a directory of shards back
//! into one time-ordered stream.
//!
//! For out-of-core analysis, [`ColumnarDirWriter`] rotates
//! [columnar](crate::codec::columnar) shards on a fixed row count and
//! [`ColumnarDirReader`] makes repeated bounded-memory passes over the
//! resulting directory, skipping whole shards whose zone maps cannot match
//! a [`ShardFilter`].

use crate::codec::columnar::{
    read_shard_footer, ColumnBuilder, ColumnarError, ColumnarRow, ColumnarShard, ShardFilter,
};
use crate::error::HttplogError;
use crate::io::{Format, LogReader, LogWriter};
use crate::manifest::{ManifestError, SpoolManifest};
use crate::record::LogRecord;
use std::collections::hash_map::Entry;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::BufWriter;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

/// Writes records into per-interval shard files named
/// `<prefix>-NNNNN.<ext>` under a directory.
///
/// Records may arrive in any order; each lands in the shard covering its
/// timestamp. Shards are created lazily and kept open (one handle per
/// active interval; a week of hourly shards is 168 handles at most).
///
/// # Example
///
/// ```no_run
/// use oat_httplog::shard::ShardedWriter;
/// use oat_httplog::io::Format;
/// use oat_httplog::LogRecord;
///
/// let mut w = ShardedWriter::new("/tmp/logs", "access", Format::Text, 3_600)?;
/// w.write(&LogRecord::example())?;
/// w.finish()?;
/// # Ok::<(), oat_httplog::HttplogError>(())
/// ```
#[derive(Debug)]
pub struct ShardedWriter {
    dir: PathBuf,
    prefix: String,
    format: Format,
    interval_secs: u64,
    open: std::collections::HashMap<u64, LogWriter<BufWriter<File>>>,
    written: u64,
}

impl ShardedWriter {
    /// Creates a sharded writer rotating every `interval_secs` seconds.
    ///
    /// # Errors
    ///
    /// [`HttplogError::Io`] if the directory cannot be created, and
    /// [`HttplogError::InvalidConfig`] when `interval_secs` is zero.
    pub fn new(
        dir: impl Into<PathBuf>,
        prefix: impl Into<String>,
        format: Format,
        interval_secs: u64,
    ) -> Result<Self, HttplogError> {
        if interval_secs == 0 {
            return Err(HttplogError::InvalidConfig(
                "shard interval must be positive",
            ));
        }
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            prefix: prefix.into(),
            format,
            interval_secs,
            open: std::collections::HashMap::new(),
            written: 0,
        })
    }

    fn shard_path(dir: &Path, prefix: &str, format: Format, index: u64) -> PathBuf {
        let ext = match format {
            Format::Text => "log",
            Format::Binary => "bin",
        };
        dir.join(format!("{prefix}-{index:06}.{ext}"))
    }

    /// Writes one record into its interval's shard.
    ///
    /// # Errors
    ///
    /// Propagates file-creation, encoding and write errors.
    pub fn write(&mut self, record: &LogRecord) -> Result<(), HttplogError> {
        let index = record.timestamp / self.interval_secs;
        let writer = match self.open.entry(index) {
            Entry::Occupied(slot) => slot.into_mut(),
            Entry::Vacant(slot) => {
                let path = Self::shard_path(&self.dir, &self.prefix, self.format, index);
                let file = File::create(path)?;
                slot.insert(LogWriter::new(BufWriter::new(file), self.format))
            }
        };
        writer.write(record)?;
        self.written += 1;
        Ok(())
    }

    /// Total records written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Number of shard files created so far.
    pub fn shards(&self) -> usize {
        self.open.len()
    }

    /// Flushes and closes every shard.
    ///
    /// # Errors
    ///
    /// Propagates the first flush error.
    pub fn finish(mut self) -> Result<(), HttplogError> {
        for (_, mut writer) in self.open.drain() {
            writer.flush()?;
        }
        Ok(())
    }
}

/// Lists the `<prefix>-*.{log,bin}` shard files of `dir`, sorted by name.
fn shard_files(dir: &Path, prefix: &str, format: Format) -> Result<Vec<PathBuf>, HttplogError> {
    let ext = match format {
        Format::Text => "log",
        Format::Binary => "bin",
    };
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().and_then(|e| e.to_str()) == Some(ext)
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(prefix))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

/// K-way-merge heap entry: the next record of one shard. Ordered reversed
/// on `(timestamp, source)` because [`BinaryHeap`] is a max-heap.
struct Head {
    timestamp: u64,
    source: usize,
    record: LogRecord,
}
impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        (self.timestamp, self.source) == (other.timestamp, other.source)
    }
}
impl Eq for Head {}
impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.timestamp, other.source).cmp(&(self.timestamp, self.source))
    }
}

/// Reads every `<prefix>-*.{log,bin}` shard in `dir` and k-way-merges them
/// into one stream ordered by timestamp.
///
/// Each shard must itself be timestamp-ordered (which [`ShardedWriter`]
/// guarantees for a time-ordered input, and CDN dumps guarantee per file).
///
/// # Errors
///
/// Propagates IO/decode errors from any shard. For inputs that may contain
/// corrupt records, see [`read_merged_lossy`].
pub fn read_merged(
    dir: &Path,
    prefix: &str,
    format: Format,
) -> Result<Vec<LogRecord>, HttplogError> {
    let paths = shard_files(dir, prefix, format)?;
    let mut readers: Vec<LogReader<File>> = paths
        .iter()
        .map(|p| Ok(LogReader::new(File::open(p)?, format)))
        .collect::<Result<_, HttplogError>>()?;

    let mut heap = BinaryHeap::new();
    for (source, reader) in readers.iter_mut().enumerate() {
        if let Some(first) = reader.next() {
            let record = first?;
            heap.push(Head {
                timestamp: record.timestamp,
                source,
                record,
            });
        }
    }
    let mut out = Vec::new();
    while let Some(head) = heap.pop() {
        out.push(head.record);
        if let Some(next) = readers[head.source].next() {
            let record = next?;
            heap.push(Head {
                timestamp: record.timestamp,
                source: head.source,
                record,
            });
        }
    }
    Ok(out)
}

/// Error budget for [`read_merged_lossy`]: how many corrupt records may be
/// quarantined before the read aborts, and how many of them are sampled
/// verbatim into the [`QuarantineReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorBudget {
    /// Maximum corrupt/truncated records tolerated across all shards.
    pub max_quarantined: u64,
    /// How many quarantined records to describe in the report.
    pub max_samples: usize,
}

impl ErrorBudget {
    /// A budget tolerating `max_quarantined` bad records (8 sampled).
    pub fn new(max_quarantined: u64) -> Self {
        Self {
            max_quarantined,
            max_samples: 8,
        }
    }

    /// Sets the number of sampled diagnostics (builder-style).
    pub fn with_samples(mut self, max_samples: usize) -> Self {
        self.max_samples = max_samples;
        self
    }
}

impl Default for ErrorBudget {
    fn default() -> Self {
        Self::new(1_000)
    }
}

/// What a lossy merged read quarantined: the number of corrupt/truncated
/// records skipped, and the first few diagnostics (shard path + decode
/// error).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Corrupt/truncated records skipped.
    pub quarantined: u64,
    /// First-N diagnostics, one per sampled bad record.
    pub samples: Vec<String>,
}

impl QuarantineReport {
    /// Whether anything was quarantined.
    pub fn is_clean(&self) -> bool {
        self.quarantined == 0
    }
}

/// Pulls the next decodable record from one shard, quarantining corrupt
/// ones under the budget. `Ok(None)` means the shard is exhausted.
fn next_good(
    reader: &mut LogReader<File>,
    path: &Path,
    budget: ErrorBudget,
    report: &mut QuarantineReport,
) -> Result<Option<LogRecord>, HttplogError> {
    loop {
        match reader.next() {
            None => return Ok(None),
            Some(Ok(record)) => return Ok(Some(record)),
            Some(Err(e)) if e.is_data_error() => {
                report.quarantined += 1;
                if report.samples.len() < budget.max_samples {
                    report.samples.push(format!("{}: {e}", path.display()));
                }
                if report.quarantined > budget.max_quarantined {
                    return Err(HttplogError::ErrorBudgetExceeded {
                        quarantined: report.quarantined,
                        budget: budget.max_quarantined,
                    });
                }
                // A terminal data error (truncated tail) ends the shard;
                // the next iteration observes `None`.
            }
            Some(Err(e)) => return Err(e),
        }
    }
}

/// Like [`read_merged`], but quarantines corrupt/truncated records instead
/// of aborting the whole merge: each bad record is counted (and the first
/// few sampled) in the returned [`QuarantineReport`], and the merge
/// continues from the next record boundary.
///
/// # Errors
///
/// [`HttplogError::ErrorBudgetExceeded`] once more than
/// `budget.max_quarantined` records have been skipped — a shard set that
/// corrupt is more likely misconfigured than damaged — and
/// [`HttplogError::Io`] for environment failures, which are never
/// quarantined.
pub fn read_merged_lossy(
    dir: &Path,
    prefix: &str,
    format: Format,
    budget: ErrorBudget,
) -> Result<(Vec<LogRecord>, QuarantineReport), HttplogError> {
    let paths = shard_files(dir, prefix, format)?;
    let mut readers: Vec<LogReader<File>> = paths
        .iter()
        .map(|p| Ok(LogReader::new(File::open(p)?, format).resilient()))
        .collect::<Result<_, HttplogError>>()?;

    let mut report = QuarantineReport::default();
    let mut heap = BinaryHeap::new();
    for (source, reader) in readers.iter_mut().enumerate() {
        if let Some(record) = next_good(reader, &paths[source], budget, &mut report)? {
            heap.push(Head {
                timestamp: record.timestamp,
                source,
                record,
            });
        }
    }
    let mut out = Vec::new();
    while let Some(head) = heap.pop() {
        out.push(head.record);
        let source = head.source;
        if let Some(record) = next_good(&mut readers[source], &paths[source], budget, &mut report)?
        {
            heap.push(Head {
                timestamp: record.timestamp,
                source,
                record,
            });
        }
    }
    Ok((out, report))
}

/// Default rows per columnar shard (≈4 M rows ≈ 250 MB of record columns):
/// large enough to amortize per-shard overhead, small enough that one
/// shard's decode buffers stay far below the out-of-core RSS targets.
pub const DEFAULT_ROWS_PER_SHARD: usize = 4_000_000;

/// Writes a stream of rows into rotating
/// [columnar](crate::codec::columnar) shards `<prefix>-NNNNNN.col` under a
/// directory.
///
/// Rows land in arrival order; a shard is sealed and flushed to disk every
/// `rows_per_shard` rows, so peak memory is bounded by one shard's column
/// buffers regardless of stream length.
///
/// # Example
///
/// ```no_run
/// use oat_httplog::shard::ColumnarDirWriter;
/// use oat_httplog::LogRecord;
///
/// let mut w = ColumnarDirWriter::<LogRecord>::new("/tmp/cols", "trace", 100_000)?;
/// w.push(&LogRecord::example())?;
/// w.finish()?;
/// # Ok::<(), oat_httplog::HttplogError>(())
/// ```
#[derive(Debug)]
pub struct ColumnarDirWriter<T: ColumnarRow> {
    dir: PathBuf,
    prefix: String,
    rows_per_shard: usize,
    builder: ColumnBuilder<T>,
    shards: u64,
    rows: u64,
}

impl<T: ColumnarRow> ColumnarDirWriter<T> {
    /// Creates a writer rotating every `rows_per_shard` rows (`0` =
    /// [`DEFAULT_ROWS_PER_SHARD`]).
    ///
    /// # Errors
    ///
    /// [`HttplogError::Io`] if the directory cannot be created.
    pub fn new(
        dir: impl Into<PathBuf>,
        prefix: impl Into<String>,
        rows_per_shard: usize,
    ) -> Result<Self, HttplogError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            prefix: prefix.into(),
            rows_per_shard: if rows_per_shard == 0 {
                DEFAULT_ROWS_PER_SHARD
            } else {
                rows_per_shard
            },
            builder: ColumnBuilder::new(),
            shards: 0,
            rows: 0,
        })
    }

    fn shard_path(dir: &Path, prefix: &str, index: u64) -> PathBuf {
        dir.join(format!("{prefix}-{index:06}.col"))
    }

    /// Appends one row, sealing the current shard if it is full.
    ///
    /// # Errors
    ///
    /// Propagates encode and file-write errors.
    pub fn push(&mut self, row: &T) -> Result<(), HttplogError> {
        self.builder.push(row)?;
        self.rows += 1;
        if self.builder.rows() >= self.rows_per_shard {
            self.seal()?;
        }
        Ok(())
    }

    /// Appends a batch of rows.
    ///
    /// # Errors
    ///
    /// As [`ColumnarDirWriter::push`].
    pub fn push_batch(&mut self, rows: &[T]) -> Result<(), HttplogError> {
        for row in rows {
            self.push(row)?;
        }
        Ok(())
    }

    /// Flushes the in-progress shard to disk (no-op when empty).
    fn seal(&mut self) -> Result<(), HttplogError> {
        if self.builder.rows() == 0 {
            return Ok(());
        }
        let path = Self::shard_path(&self.dir, &self.prefix, self.shards);
        self.builder.write_file(&path)?;
        self.builder.clear();
        self.shards += 1;
        Ok(())
    }

    /// Total rows pushed.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Shards sealed so far (excluding the in-progress one).
    pub fn shards(&self) -> u64 {
        self.shards
    }

    /// Seals the final shard and returns `(rows, shards)` written.
    ///
    /// # Errors
    ///
    /// Propagates the final shard's write error.
    pub fn finish(mut self) -> Result<(u64, u64), HttplogError> {
        self.seal()?;
        Ok((self.rows, self.shards))
    }
}

/// A bounded-memory reader over a [`ColumnarDirWriter`] output directory.
///
/// The reader holds only the sorted shard path list; every
/// [`scan`](ColumnarDirReader::scan) opens (mmaps) one shard at a time, so
/// repeated passes touch at most one shard's pages plus one decode batch
/// of rows. Shards whose [zone maps](crate::codec::columnar::ZoneMap)
/// cannot match the filter are skipped without reading their columns.
#[derive(Debug, Clone)]
pub struct ColumnarDirReader<T: ColumnarRow> {
    paths: Vec<PathBuf>,
    _row: PhantomData<fn() -> T>,
}

impl<T: ColumnarRow> ColumnarDirReader<T> {
    /// Opens the `<prefix>-*.col` shards of `dir`, sorted by name (which
    /// is write order for [`ColumnarDirWriter`] output).
    ///
    /// The shard files are listed, not parsed: corrupt shards surface on
    /// the first scan (or are quarantined by
    /// [`scan_lossy`](ColumnarDirReader::scan_lossy)).
    ///
    /// # Errors
    ///
    /// [`HttplogError::Io`] if the directory cannot be read.
    pub fn open(dir: &Path, prefix: &str) -> Result<Self, HttplogError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().and_then(|e| e.to_str()) == Some("col")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with(prefix))
            })
            .collect();
        paths.sort();
        Ok(Self {
            paths,
            _row: PhantomData,
        })
    }

    /// Opens a spool like [`open`](ColumnarDirReader::open), but first
    /// verifies it against its [`SpoolManifest`]: the manifest must exist
    /// and be marked complete, its fingerprint must match
    /// `expected_fingerprint` (when one is given), the directory listing
    /// must hold exactly the manifested shards (no stale extras, nothing
    /// missing), and every shard footer must agree with its manifested
    /// row count. This is what catches a partially-written or
    /// wrong-configuration spool *before* an hours-long analysis starts.
    ///
    /// # Errors
    ///
    /// [`HttplogError::Manifest`] for every verification failure
    /// ([`ManifestError::Missing`] / [`Incomplete`](ManifestError::Incomplete)
    /// / [`FingerprintMismatch`](ManifestError::FingerprintMismatch) /
    /// [`ShardMismatch`](ManifestError::ShardMismatch)), plus shard
    /// footer parse errors and [`HttplogError::Io`] for environment
    /// failures.
    pub fn open_verified(
        dir: &Path,
        prefix: &str,
        expected_fingerprint: Option<u64>,
    ) -> Result<(Self, SpoolManifest), HttplogError> {
        let manifest = SpoolManifest::load(dir, prefix)?.ok_or_else(|| {
            HttplogError::from(ManifestError::Missing(SpoolManifest::path_for(dir, prefix)))
        })?;
        if !manifest.complete {
            return Err(ManifestError::Incomplete.into());
        }
        if let Some(expected) = expected_fingerprint {
            if manifest.fingerprint != expected {
                return Err(ManifestError::FingerprintMismatch {
                    expected,
                    found: manifest.fingerprint,
                }
                .into());
            }
        }
        let reader = Self::open(dir, prefix)?;
        let listed: Vec<&str> = reader
            .paths
            .iter()
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()))
            .collect();
        for entry in &manifest.shards {
            if !listed.contains(&entry.name.as_str()) {
                return Err(ManifestError::ShardMismatch(format!(
                    "manifested shard {} is missing from the spool",
                    entry.name
                ))
                .into());
            }
        }
        for name in &listed {
            if !manifest.shards.iter().any(|s| s.name == *name) {
                return Err(ManifestError::ShardMismatch(format!(
                    "stale shard {name} is not in the manifest"
                ))
                .into());
            }
        }
        let mut total: u64 = 0;
        for (path, entry) in reader.paths.iter().zip(&manifest.shards) {
            let footer = read_shard_footer(path)?;
            if footer.rows != entry.rows {
                return Err(ManifestError::ShardMismatch(format!(
                    "shard {} holds {} rows, manifest says {}",
                    entry.name, footer.rows, entry.rows
                ))
                .into());
            }
            total += footer.rows;
        }
        if total != manifest.total_rows {
            return Err(ManifestError::ShardMismatch(format!(
                "shards hold {total} rows, manifest says {}",
                manifest.total_rows
            ))
            .into());
        }
        Ok((reader, manifest))
    }

    /// Number of shard files.
    pub fn shards(&self) -> usize {
        self.paths.len()
    }

    /// The shard paths, in scan order.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }

    /// Total rows across all shards (reads only footers).
    ///
    /// # Errors
    ///
    /// Propagates the first shard open/parse error.
    pub fn rows(&self) -> Result<u64, HttplogError> {
        let mut total: u64 = 0;
        for path in &self.paths {
            let shard = ColumnarShard::open_expecting(path, T::SCHEMA)?;
            total += shard.rows() as u64;
        }
        Ok(total)
    }

    /// One bounded-memory pass: feeds `sink` batches of at most
    /// `batch_rows` rows (`0` = 65 536) matching `filter`, in shard order,
    /// and returns the number of rows delivered. Shards pruned by their
    /// zone map are never opened beyond the footer.
    ///
    /// # Errors
    ///
    /// Propagates shard open/parse/decode errors.
    pub fn scan<F>(
        &self,
        filter: &ShardFilter,
        batch_rows: usize,
        mut sink: F,
    ) -> Result<u64, HttplogError>
    where
        F: FnMut(&[T]),
    {
        let batch_rows = if batch_rows == 0 { 65_536 } else { batch_rows };
        let mut delivered: u64 = 0;
        let mut batch: Vec<T> = Vec::new();
        for path in &self.paths {
            let shard = ColumnarShard::open_expecting(path, T::SCHEMA)?;
            if !shard.zone().may_match(filter) {
                continue;
            }
            let rows = shard.rows();
            let mut lo = 0;
            while lo < rows {
                let hi = lo.saturating_add(batch_rows).min(rows);
                batch.clear();
                shard.read_matching(filter, lo..hi, &mut batch)?;
                if !batch.is_empty() {
                    delivered += batch.len() as u64;
                    sink(&batch);
                }
                lo = hi;
            }
        }
        Ok(delivered)
    }

    /// Like [`scan`](ColumnarDirReader::scan), but quarantines damage
    /// instead of aborting: a shard that fails to open/parse is skipped
    /// (counted once), and within a readable shard each row that fails to
    /// decode is skipped (counted per row). IO errors remain fatal.
    ///
    /// # Errors
    ///
    /// [`HttplogError::ErrorBudgetExceeded`] once the quarantine count
    /// passes `budget.max_quarantined`, and [`HttplogError::Io`] for
    /// environment failures.
    pub fn scan_lossy<F>(
        &self,
        filter: &ShardFilter,
        batch_rows: usize,
        budget: ErrorBudget,
        mut sink: F,
    ) -> Result<(u64, QuarantineReport), HttplogError>
    where
        F: FnMut(&[T]),
    {
        let batch_rows = if batch_rows == 0 { 65_536 } else { batch_rows };
        let mut delivered: u64 = 0;
        let mut report = QuarantineReport::default();
        let quarantine = |report: &mut QuarantineReport,
                          path: &Path,
                          e: &ColumnarError|
         -> Result<(), HttplogError> {
            report.quarantined += 1;
            if report.samples.len() < budget.max_samples {
                report.samples.push(format!("{}: {e}", path.display()));
            }
            if report.quarantined > budget.max_quarantined {
                return Err(HttplogError::ErrorBudgetExceeded {
                    quarantined: report.quarantined,
                    budget: budget.max_quarantined,
                });
            }
            Ok(())
        };
        let mut batch: Vec<T> = Vec::new();
        for path in &self.paths {
            let shard = match ColumnarShard::open_expecting(path, T::SCHEMA) {
                Ok(shard) => shard,
                Err(e) if e.is_data_error() => {
                    quarantine(&mut report, path, &e)?;
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            if !shard.zone().may_match(filter) {
                continue;
            }
            let rows = shard.rows();
            let mut lo = 0;
            while lo < rows {
                let hi = lo.saturating_add(batch_rows).min(rows);
                batch.clear();
                match shard.read_matching(filter, lo..hi, &mut batch) {
                    Ok(()) => {}
                    Err(e) if e.is_data_error() => {
                        // Re-read the window row by row so one bad row
                        // doesn't quarantine its whole batch.
                        batch.clear();
                        for i in lo..hi {
                            match shard.read_matching(filter, i..i + 1, &mut batch) {
                                Ok(()) => {}
                                Err(e) if e.is_data_error() => {
                                    quarantine(&mut report, path, &e)?;
                                }
                                Err(e) => return Err(e.into()),
                            }
                        }
                    }
                    Err(e) => return Err(e.into()),
                }
                if !batch.is_empty() {
                    delivered += batch.len() as u64;
                    sink(&batch);
                }
                lo = hi;
            }
        }
        Ok((delivered, report))
    }

    /// Materializes every matching row (convenience for tests and small
    /// directories; prefer [`scan`](ColumnarDirReader::scan) at scale).
    ///
    /// # Errors
    ///
    /// As [`scan`](ColumnarDirReader::scan).
    pub fn read_all(&self, filter: &ShardFilter) -> Result<Vec<T>, HttplogError> {
        let mut out = Vec::new();
        self.scan(filter, 0, |batch| out.extend_from_slice(batch))?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u64) -> Vec<LogRecord> {
        (0..n)
            .map(|i| LogRecord {
                timestamp: i * 1_000, // spread across shards
                object: crate::ids::ObjectId::new(i),
                ..LogRecord::example()
            })
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("oat-shard-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn rotates_on_interval_and_merges_back() {
        let dir = tmp("rotate");
        let input = records(50); // timestamps 0..49k over 3600s shards
        let mut writer =
            ShardedWriter::new(&dir, "access", Format::Text, 3_600).expect("create writer");
        for r in &input {
            writer.write(r).expect("write");
        }
        assert_eq!(writer.written(), 50);
        // 49_000 / 3_600 = 13 full intervals → 14 shards.
        assert_eq!(writer.shards(), 14);
        writer.finish().expect("flush");

        let merged = read_merged(&dir, "access", Format::Text).expect("merge");
        assert_eq!(merged, input);
    }

    #[test]
    fn binary_shards_roundtrip() {
        let dir = tmp("binary");
        let input = records(20);
        let mut writer =
            ShardedWriter::new(&dir, "edge", Format::Binary, 10_000).expect("create writer");
        for r in &input {
            writer.write(r).expect("write");
        }
        writer.finish().expect("flush");
        let merged = read_merged(&dir, "edge", Format::Binary).expect("merge");
        assert_eq!(merged, input);
    }

    #[test]
    fn out_of_order_input_lands_in_correct_shards() {
        let dir = tmp("ooo");
        let mut input = records(30);
        input.reverse(); // arrive newest-first
        let mut writer =
            ShardedWriter::new(&dir, "access", Format::Text, 3_600).expect("create writer");
        for r in &input {
            writer.write(r).expect("write");
        }
        writer.finish().expect("flush");
        let merged = read_merged(&dir, "access", Format::Text).expect("merge");
        // Output is time-ordered regardless of arrival order (within-shard
        // order holds because each shard got its records newest-first…
        // reversed input is still monotone per shard).
        let mut expected = input.clone();
        expected.sort_by_key(|r| r.timestamp);
        // Per-shard streams must be individually ordered for the merge to
        // be globally ordered; reversed input violates that within shards,
        // so compare as multisets of timestamps instead.
        let mut got: Vec<u64> = merged.iter().map(|r| r.timestamp).collect();
        got.sort_unstable();
        let want: Vec<u64> = expected.iter().map(|r| r.timestamp).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn zero_interval_rejected() {
        let err = ShardedWriter::new(tmp("zero"), "x", Format::Text, 0).unwrap_err();
        assert!(matches!(err, HttplogError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn corrupt_shard_surfaces_decode_error() {
        let dir = tmp("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let input = records(3);
        let mut writer =
            ShardedWriter::new(&dir, "access", Format::Text, 1_000_000).expect("create writer");
        for r in &input {
            writer.write(r).expect("write");
        }
        writer.finish().expect("flush");
        std::fs::write(dir.join("access-999999.log"), "bad\trecord\n").unwrap();
        match read_merged(&dir, "access", Format::Text) {
            Err(HttplogError::TextDecode(_)) => {}
            other => panic!("expected a text decode error, got {other:?}"),
        }
    }

    #[test]
    fn merge_ignores_other_prefixes_and_extensions() {
        let dir = tmp("mixed");
        std::fs::create_dir_all(&dir).unwrap();
        let input = records(5);
        let mut writer =
            ShardedWriter::new(&dir, "access", Format::Text, 1_000_000).expect("create writer");
        for r in &input {
            writer.write(r).expect("write");
        }
        writer.finish().expect("flush");
        std::fs::write(
            dir.join("other-000000.log"),
            "not ours? no: prefix differs\n",
        )
        .unwrap();
        std::fs::write(dir.join("access-notes.txt"), "wrong extension").unwrap();
        let merged = read_merged(&dir, "access", Format::Text).expect("merge");
        assert_eq!(merged, input);
    }

    #[test]
    fn lossy_merge_quarantines_corrupt_lines() {
        let dir = tmp("lossy");
        std::fs::create_dir_all(&dir).unwrap();
        let input = records(5);
        let mut writer =
            ShardedWriter::new(&dir, "access", Format::Text, 1_000_000).expect("create writer");
        for r in &input {
            writer.write(r).expect("write");
        }
        writer.finish().expect("flush");
        // A later shard holding one good record sandwiched by garbage.
        let good = crate::codec::text::encode(&LogRecord {
            timestamp: 999_000,
            ..LogRecord::example()
        });
        std::fs::write(
            dir.join("access-000001.log"),
            format!("bad\trecord\n{good}\nanother bad one\n"),
        )
        .unwrap();

        // Strict merge aborts …
        assert!(read_merged(&dir, "access", Format::Text).is_err());
        // … lossy merge quarantines and keeps every good record.
        let (merged, report) =
            read_merged_lossy(&dir, "access", Format::Text, ErrorBudget::default())
                .expect("lossy merge");
        assert_eq!(merged.len(), input.len() + 1);
        assert!(merged.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        assert_eq!(report.quarantined, 2);
        assert!(!report.is_clean());
        assert_eq!(report.samples.len(), 2);
        assert!(report.samples[0].contains("access-000001.log"));
    }

    #[test]
    fn lossy_merge_respects_error_budget() {
        let dir = tmp("lossy-budget");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("access-000000.log"), "bad\nworse\nawful\n").unwrap();
        let err = read_merged_lossy(&dir, "access", Format::Text, ErrorBudget::new(2))
            .expect_err("budget of 2 cannot absorb 3 bad records");
        match err {
            HttplogError::ErrorBudgetExceeded {
                quarantined,
                budget,
            } => {
                assert_eq!(quarantined, 3);
                assert_eq!(budget, 2);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn lossy_merge_sample_cap() {
        let dir = tmp("lossy-samples");
        std::fs::create_dir_all(&dir).unwrap();
        let garbage = "bad line\n".repeat(10);
        std::fs::write(dir.join("access-000000.log"), garbage).unwrap();
        let (merged, report) = read_merged_lossy(
            &dir,
            "access",
            Format::Text,
            ErrorBudget::new(100).with_samples(3),
        )
        .expect("within budget");
        assert!(merged.is_empty());
        assert_eq!(report.quarantined, 10);
        assert_eq!(report.samples.len(), 3, "samples are capped");
    }

    #[test]
    fn lossy_merge_quarantines_truncated_binary_tail() {
        let dir = tmp("lossy-truncated");
        let input = records(6);
        let mut writer =
            ShardedWriter::new(&dir, "edge", Format::Binary, 3_000).expect("create writer");
        for r in &input {
            writer.write(r).expect("write");
        }
        writer.finish().expect("flush");
        // Truncate the last shard mid-frame.
        let paths = shard_files(&dir, "edge", Format::Binary).unwrap();
        let last = paths.last().expect("shards exist");
        let bytes = std::fs::read(last).unwrap();
        std::fs::write(last, &bytes[..bytes.len() - 3]).unwrap();

        let (merged, report) =
            read_merged_lossy(&dir, "edge", Format::Binary, ErrorBudget::default())
                .expect("lossy merge");
        assert_eq!(
            merged.len(),
            input.len() - 1,
            "only the clipped tail is lost"
        );
        assert_eq!(report.quarantined, 1);
        assert!(report.samples[0].contains("truncated"));
    }

    #[test]
    fn lossy_merge_on_clean_input_matches_strict() {
        let dir = tmp("lossy-clean");
        let input = records(12);
        let mut writer =
            ShardedWriter::new(&dir, "access", Format::Text, 3_600).expect("create writer");
        for r in &input {
            writer.write(r).expect("write");
        }
        writer.finish().expect("flush");
        let strict = read_merged(&dir, "access", Format::Text).expect("strict");
        let (lossy, report) =
            read_merged_lossy(&dir, "access", Format::Text, ErrorBudget::default()).expect("lossy");
        assert_eq!(strict, lossy);
        assert!(report.is_clean());
        assert!(report.samples.is_empty());
    }

    #[test]
    fn empty_directory_merges_empty() {
        let dir = tmp("empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read_merged(&dir, "access", Format::Text)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn columnar_dir_rotates_and_reads_back() {
        let dir = tmp("col-rotate");
        let input = records(25);
        let mut w = ColumnarDirWriter::<LogRecord>::new(&dir, "trace", 10).expect("writer");
        w.push_batch(&input).expect("push");
        assert_eq!(w.rows(), 25);
        assert_eq!(w.shards(), 2, "two full shards sealed, tail in memory");
        let (rows, shards) = w.finish().expect("finish");
        assert_eq!((rows, shards), (25, 3));

        let r = ColumnarDirReader::<LogRecord>::open(&dir, "trace").expect("reader");
        assert_eq!(r.shards(), 3);
        assert_eq!(r.rows().expect("rows"), 25);
        let back = r.read_all(&ShardFilter::all()).expect("read");
        assert_eq!(back, input);
    }

    #[test]
    fn columnar_scan_batches_are_bounded_and_ordered() {
        let dir = tmp("col-batch");
        let input = records(23);
        let mut w = ColumnarDirWriter::<LogRecord>::new(&dir, "trace", 9).expect("writer");
        w.push_batch(&input).expect("push");
        w.finish().expect("finish");

        let r = ColumnarDirReader::<LogRecord>::open(&dir, "trace").expect("reader");
        let mut seen = Vec::new();
        let mut max_batch = 0;
        let n = r
            .scan(&ShardFilter::all(), 4, |batch| {
                max_batch = max_batch.max(batch.len());
                seen.extend_from_slice(batch);
            })
            .expect("scan");
        assert_eq!(n, 23);
        assert!(max_batch <= 4, "batches respect the row bound");
        assert_eq!(seen, input);
    }

    #[test]
    fn columnar_zone_pruning_matches_full_scan() {
        let dir = tmp("col-prune");
        let input = records(40); // timestamps 0..39k, 10 rows per shard
        let mut w = ColumnarDirWriter::<LogRecord>::new(&dir, "trace", 10).expect("writer");
        w.push_batch(&input).expect("push");
        w.finish().expect("finish");

        let r = ColumnarDirReader::<LogRecord>::open(&dir, "trace").expect("reader");
        let filter = ShardFilter::all().with_time(12_000..27_000);
        let pruned = r.read_all(&filter).expect("filtered read");
        let expected: Vec<LogRecord> = input
            .iter()
            .filter(|rec| (12_000..27_000).contains(&rec.timestamp))
            .cloned()
            .collect();
        assert_eq!(pruned, expected);
    }

    #[test]
    fn columnar_lossy_scan_quarantines_corrupt_shard() {
        let dir = tmp("col-lossy");
        let input = records(30);
        let mut w = ColumnarDirWriter::<LogRecord>::new(&dir, "trace", 10).expect("writer");
        w.push_batch(&input).expect("push");
        w.finish().expect("finish");

        // Truncate the middle shard so it fails to parse.
        let middle = dir.join("trace-000001.col");
        let bytes = std::fs::read(&middle).unwrap();
        std::fs::write(&middle, &bytes[..bytes.len() / 2]).unwrap();

        let r = ColumnarDirReader::<LogRecord>::open(&dir, "trace").expect("reader");
        assert!(r.read_all(&ShardFilter::all()).is_err(), "strict aborts");

        let mut seen: Vec<LogRecord> = Vec::new();
        let (n, report) = r
            .scan_lossy(&ShardFilter::all(), 0, ErrorBudget::default(), |batch| {
                seen.extend_from_slice(batch)
            })
            .expect("lossy scan");
        assert_eq!(n, 20, "both intact shards survive");
        assert_eq!(report.quarantined, 1);
        assert!(report.samples[0].contains("trace-000001.col"));
        let expected: Vec<LogRecord> = input[..10].iter().chain(&input[20..]).cloned().collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn columnar_lossy_scan_respects_budget() {
        let dir = tmp("col-lossy-budget");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("trace-000000.col"), b"garbage").unwrap();
        std::fs::write(dir.join("trace-000001.col"), b"more garbage").unwrap();
        let r = ColumnarDirReader::<LogRecord>::open(&dir, "trace").expect("reader");
        let err = r
            .scan_lossy(&ShardFilter::all(), 0, ErrorBudget::new(1), |_| {})
            .expect_err("budget of 1 cannot absorb 2 bad shards");
        assert!(matches!(err, HttplogError::ErrorBudgetExceeded { .. }));
    }

    #[test]
    fn checksummed_shard_corruption_quarantines_whole_shard() {
        // A flipped byte in a v2 (checksummed) shard must fail at open,
        // so the lossy scan quarantines the shard ONCE and salvages zero
        // rows from it — corruption is detected, never decoded.
        let dir = tmp("col-flip");
        let input = records(30);
        let mut w = ColumnarDirWriter::<LogRecord>::new(&dir, "trace", 10).expect("writer");
        w.push_batch(&input).expect("push");
        w.finish().expect("finish");

        let middle = dir.join("trace-000001.col");
        let mut bytes = std::fs::read(&middle).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01; // one bit, mid-column
        std::fs::write(&middle, &bytes).unwrap();

        let r = ColumnarDirReader::<LogRecord>::open(&dir, "trace").expect("reader");
        let mut seen: Vec<LogRecord> = Vec::new();
        let (n, report) = r
            .scan_lossy(&ShardFilter::all(), 0, ErrorBudget::default(), |batch| {
                seen.extend_from_slice(batch)
            })
            .expect("lossy scan");
        assert_eq!(n, 20, "no row of the corrupt shard is salvaged");
        assert_eq!(report.quarantined, 1, "whole-shard quarantine, once");
        assert!(report.samples[0].contains("trace-000001.col"));
        let expected: Vec<LogRecord> = input[..10].iter().chain(&input[20..]).cloned().collect();
        assert_eq!(seen, expected);
    }

    fn manifest_for(dir: &Path, prefix: &str, fingerprint: u64) -> SpoolManifest {
        let reader = ColumnarDirReader::<LogRecord>::open(dir, prefix).expect("reader");
        let shards: Vec<crate::manifest::ManifestShard> = reader
            .paths()
            .iter()
            .map(|p| crate::manifest::ManifestShard {
                name: p.file_name().unwrap().to_str().unwrap().to_string(),
                rows: read_shard_footer(p).expect("footer").rows,
            })
            .collect();
        SpoolManifest {
            prefix: prefix.to_string(),
            codec_version: crate::codec::columnar::VERSION,
            fingerprint,
            rows_per_shard: 10,
            total_rows: shards.iter().map(|s| s.rows).sum(),
            complete: true,
            shards,
        }
    }

    #[test]
    fn open_verified_accepts_a_complete_matching_spool() {
        let dir = tmp("verified-ok");
        let input = records(25);
        let mut w = ColumnarDirWriter::<LogRecord>::new(&dir, "trace", 10).expect("writer");
        w.push_batch(&input).expect("push");
        w.finish().expect("finish");
        let manifest = manifest_for(&dir, "trace", 0xFEED);
        manifest
            .store(&crate::durable::RealIo, &dir)
            .expect("store");

        let (reader, loaded) =
            ColumnarDirReader::<LogRecord>::open_verified(&dir, "trace", Some(0xFEED))
                .expect("verified open");
        assert_eq!(loaded, manifest);
        assert_eq!(reader.shards(), 3);
        // Without a fingerprint expectation, any recorded value passes.
        ColumnarDirReader::<LogRecord>::open_verified(&dir, "trace", None)
            .expect("unfingerprinted open");
    }

    #[test]
    fn open_verified_rejects_bad_spools() {
        let dir = tmp("verified-bad");
        let input = records(25);
        let mut w = ColumnarDirWriter::<LogRecord>::new(&dir, "trace", 10).expect("writer");
        w.push_batch(&input).expect("push");
        w.finish().expect("finish");

        let reject = |expected: Option<u64>, want: &str| {
            let err = ColumnarDirReader::<LogRecord>::open_verified(&dir, "trace", expected)
                .expect_err(want);
            assert!(err.is_data_error(), "{want}: {err}");
            err
        };

        // No manifest at all.
        let err = reject(None, "missing manifest");
        assert!(matches!(
            err,
            HttplogError::Manifest(ManifestError::Missing(_))
        ));

        // Incomplete manifest (interrupted generation).
        let mut manifest = manifest_for(&dir, "trace", 0xFEED);
        manifest.complete = false;
        manifest
            .store(&crate::durable::RealIo, &dir)
            .expect("store");
        let err = reject(None, "incomplete manifest");
        assert!(matches!(
            err,
            HttplogError::Manifest(ManifestError::Incomplete)
        ));

        // Fingerprint mismatch (different config/seed).
        manifest.complete = true;
        manifest
            .store(&crate::durable::RealIo, &dir)
            .expect("store");
        let err = reject(Some(0xBAD), "fingerprint mismatch");
        assert!(matches!(
            err,
            HttplogError::Manifest(ManifestError::FingerprintMismatch {
                expected: 0xBAD,
                found: 0xFEED
            })
        ));

        // A stale extra shard on disk.
        let extra = dir.join("trace-000099.col");
        std::fs::copy(dir.join("trace-000000.col"), &extra).unwrap();
        let err = reject(Some(0xFEED), "stale shard");
        assert!(matches!(
            err,
            HttplogError::Manifest(ManifestError::ShardMismatch(_))
        ));
        std::fs::remove_file(&extra).unwrap();

        // A manifested shard missing from disk.
        let victim = dir.join("trace-000002.col");
        let saved = std::fs::read(&victim).unwrap();
        std::fs::remove_file(&victim).unwrap();
        let err = reject(Some(0xFEED), "missing shard");
        assert!(matches!(
            err,
            HttplogError::Manifest(ManifestError::ShardMismatch(_))
        ));
        std::fs::write(&victim, &saved).unwrap();

        // A shard whose footer row count disagrees with the manifest.
        manifest.shards[1].rows += 1;
        manifest
            .store(&crate::durable::RealIo, &dir)
            .expect("store");
        let err = reject(Some(0xFEED), "row count mismatch");
        assert!(matches!(
            err,
            HttplogError::Manifest(ManifestError::ShardMismatch(_))
        ));
    }

    #[test]
    fn transcode_roundtrip_binary_to_columnar_and_back() {
        let dir = tmp("col-transcode");
        let input = records(17);
        let mut row_bytes = Vec::new();
        crate::io::write_all(&mut row_bytes, Format::Binary, &input).expect("encode");

        let n = crate::io::transcode_to_columnar(&row_bytes[..], Format::Binary, &dir, "t", 5)
            .expect("to columnar");
        assert_eq!(n, 17);

        let mut back_bytes = Vec::new();
        let m = crate::io::transcode_from_columnar(&dir, "t", &mut back_bytes, Format::Binary)
            .expect("from columnar");
        assert_eq!(m, 17);
        assert_eq!(back_bytes, row_bytes, "row codec bytes are identical");
    }
}
