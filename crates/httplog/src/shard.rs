//! Time-rotated log shards.
//!
//! Production CDN logs arrive as per-interval files (hourly dumps per
//! PoP). [`ShardedWriter`] rotates output files on record-timestamp
//! boundaries, and [`read_merged`] k-way-merges a directory of shards back
//! into one time-ordered stream.

use crate::error::HttplogError;
use crate::io::{Format, LogReader, LogWriter};
use crate::record::LogRecord;
use std::collections::hash_map::Entry;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

/// Writes records into per-interval shard files named
/// `<prefix>-NNNNN.<ext>` under a directory.
///
/// Records may arrive in any order; each lands in the shard covering its
/// timestamp. Shards are created lazily and kept open (one handle per
/// active interval; a week of hourly shards is 168 handles at most).
///
/// # Example
///
/// ```no_run
/// use oat_httplog::shard::ShardedWriter;
/// use oat_httplog::io::Format;
/// use oat_httplog::LogRecord;
///
/// let mut w = ShardedWriter::new("/tmp/logs", "access", Format::Text, 3_600)?;
/// w.write(&LogRecord::example())?;
/// w.finish()?;
/// # Ok::<(), oat_httplog::HttplogError>(())
/// ```
#[derive(Debug)]
pub struct ShardedWriter {
    dir: PathBuf,
    prefix: String,
    format: Format,
    interval_secs: u64,
    open: std::collections::HashMap<u64, LogWriter<BufWriter<File>>>,
    written: u64,
}

impl ShardedWriter {
    /// Creates a sharded writer rotating every `interval_secs` seconds.
    ///
    /// # Errors
    ///
    /// [`HttplogError::Io`] if the directory cannot be created, and
    /// [`HttplogError::InvalidConfig`] when `interval_secs` is zero.
    pub fn new(
        dir: impl Into<PathBuf>,
        prefix: impl Into<String>,
        format: Format,
        interval_secs: u64,
    ) -> Result<Self, HttplogError> {
        if interval_secs == 0 {
            return Err(HttplogError::InvalidConfig(
                "shard interval must be positive",
            ));
        }
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            prefix: prefix.into(),
            format,
            interval_secs,
            open: std::collections::HashMap::new(),
            written: 0,
        })
    }

    fn shard_path(dir: &Path, prefix: &str, format: Format, index: u64) -> PathBuf {
        let ext = match format {
            Format::Text => "log",
            Format::Binary => "bin",
        };
        dir.join(format!("{prefix}-{index:06}.{ext}"))
    }

    /// Writes one record into its interval's shard.
    ///
    /// # Errors
    ///
    /// Propagates file-creation, encoding and write errors.
    pub fn write(&mut self, record: &LogRecord) -> Result<(), HttplogError> {
        let index = record.timestamp / self.interval_secs;
        let writer = match self.open.entry(index) {
            Entry::Occupied(slot) => slot.into_mut(),
            Entry::Vacant(slot) => {
                let path = Self::shard_path(&self.dir, &self.prefix, self.format, index);
                let file = File::create(path)?;
                slot.insert(LogWriter::new(BufWriter::new(file), self.format))
            }
        };
        writer.write(record)?;
        self.written += 1;
        Ok(())
    }

    /// Total records written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Number of shard files created so far.
    pub fn shards(&self) -> usize {
        self.open.len()
    }

    /// Flushes and closes every shard.
    ///
    /// # Errors
    ///
    /// Propagates the first flush error.
    pub fn finish(mut self) -> Result<(), HttplogError> {
        for (_, mut writer) in self.open.drain() {
            writer.flush()?;
        }
        Ok(())
    }
}

/// Reads every `<prefix>-*.{log,bin}` shard in `dir` and k-way-merges them
/// into one stream ordered by timestamp.
///
/// Each shard must itself be timestamp-ordered (which [`ShardedWriter`]
/// guarantees for a time-ordered input, and CDN dumps guarantee per file).
///
/// # Errors
///
/// Propagates IO/decode errors from any shard.
pub fn read_merged(
    dir: &Path,
    prefix: &str,
    format: Format,
) -> Result<Vec<LogRecord>, HttplogError> {
    let ext = match format {
        Format::Text => "log",
        Format::Binary => "bin",
    };
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().and_then(|e| e.to_str()) == Some(ext)
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(prefix))
        })
        .collect();
    paths.sort();

    let mut readers: Vec<LogReader<File>> = paths
        .iter()
        .map(|p| Ok(LogReader::new(File::open(p)?, format)))
        .collect::<Result<_, HttplogError>>()?;

    // K-way merge on (timestamp, reader index) via a min-heap.
    struct Head {
        timestamp: u64,
        source: usize,
        record: LogRecord,
    }
    impl PartialEq for Head {
        fn eq(&self, other: &Self) -> bool {
            (self.timestamp, self.source) == (other.timestamp, other.source)
        }
    }
    impl Eq for Head {}
    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Head {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reversed: BinaryHeap is a max-heap.
            (other.timestamp, other.source).cmp(&(self.timestamp, self.source))
        }
    }

    let mut heap = BinaryHeap::new();
    for (source, reader) in readers.iter_mut().enumerate() {
        if let Some(first) = reader.next() {
            let record = first?;
            heap.push(Head {
                timestamp: record.timestamp,
                source,
                record,
            });
        }
    }
    let mut out = Vec::new();
    while let Some(head) = heap.pop() {
        out.push(head.record);
        if let Some(next) = readers[head.source].next() {
            let record = next?;
            heap.push(Head {
                timestamp: record.timestamp,
                source: head.source,
                record,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u64) -> Vec<LogRecord> {
        (0..n)
            .map(|i| LogRecord {
                timestamp: i * 1_000, // spread across shards
                object: crate::ids::ObjectId::new(i),
                ..LogRecord::example()
            })
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("oat-shard-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn rotates_on_interval_and_merges_back() {
        let dir = tmp("rotate");
        let input = records(50); // timestamps 0..49k over 3600s shards
        let mut writer =
            ShardedWriter::new(&dir, "access", Format::Text, 3_600).expect("create writer");
        for r in &input {
            writer.write(r).expect("write");
        }
        assert_eq!(writer.written(), 50);
        // 49_000 / 3_600 = 13 full intervals → 14 shards.
        assert_eq!(writer.shards(), 14);
        writer.finish().expect("flush");

        let merged = read_merged(&dir, "access", Format::Text).expect("merge");
        assert_eq!(merged, input);
    }

    #[test]
    fn binary_shards_roundtrip() {
        let dir = tmp("binary");
        let input = records(20);
        let mut writer =
            ShardedWriter::new(&dir, "edge", Format::Binary, 10_000).expect("create writer");
        for r in &input {
            writer.write(r).expect("write");
        }
        writer.finish().expect("flush");
        let merged = read_merged(&dir, "edge", Format::Binary).expect("merge");
        assert_eq!(merged, input);
    }

    #[test]
    fn out_of_order_input_lands_in_correct_shards() {
        let dir = tmp("ooo");
        let mut input = records(30);
        input.reverse(); // arrive newest-first
        let mut writer =
            ShardedWriter::new(&dir, "access", Format::Text, 3_600).expect("create writer");
        for r in &input {
            writer.write(r).expect("write");
        }
        writer.finish().expect("flush");
        let merged = read_merged(&dir, "access", Format::Text).expect("merge");
        // Output is time-ordered regardless of arrival order (within-shard
        // order holds because each shard got its records newest-first…
        // reversed input is still monotone per shard).
        let mut expected = input.clone();
        expected.sort_by_key(|r| r.timestamp);
        // Per-shard streams must be individually ordered for the merge to
        // be globally ordered; reversed input violates that within shards,
        // so compare as multisets of timestamps instead.
        let mut got: Vec<u64> = merged.iter().map(|r| r.timestamp).collect();
        got.sort_unstable();
        let want: Vec<u64> = expected.iter().map(|r| r.timestamp).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn zero_interval_rejected() {
        let err = ShardedWriter::new(tmp("zero"), "x", Format::Text, 0).unwrap_err();
        assert!(matches!(err, HttplogError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn corrupt_shard_surfaces_decode_error() {
        let dir = tmp("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let input = records(3);
        let mut writer =
            ShardedWriter::new(&dir, "access", Format::Text, 1_000_000).expect("create writer");
        for r in &input {
            writer.write(r).expect("write");
        }
        writer.finish().expect("flush");
        std::fs::write(dir.join("access-999999.log"), "bad\trecord\n").unwrap();
        match read_merged(&dir, "access", Format::Text) {
            Err(HttplogError::TextDecode(_)) => {}
            other => panic!("expected a text decode error, got {other:?}"),
        }
    }

    #[test]
    fn merge_ignores_other_prefixes_and_extensions() {
        let dir = tmp("mixed");
        std::fs::create_dir_all(&dir).unwrap();
        let input = records(5);
        let mut writer =
            ShardedWriter::new(&dir, "access", Format::Text, 1_000_000).expect("create writer");
        for r in &input {
            writer.write(r).expect("write");
        }
        writer.finish().expect("flush");
        std::fs::write(
            dir.join("other-000000.log"),
            "not ours? no: prefix differs\n",
        )
        .unwrap();
        std::fs::write(dir.join("access-notes.txt"), "wrong extension").unwrap();
        let merged = read_merged(&dir, "access", Format::Text).expect("merge");
        assert_eq!(merged, input);
    }

    #[test]
    fn empty_directory_merges_empty() {
        let dir = tmp("empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read_merged(&dir, "access", Format::Text)
            .unwrap()
            .is_empty());
    }
}
