//! Columnar (struct-of-arrays) shard codec with mmap zero-copy reads.
//!
//! The row codecs ([`binary`](crate::codec::binary), [`text`](crate::codec::text))
//! interleave every field of every record, so a single-column pass (say, all
//! timestamps) still decodes whole frames. This module stores one on-disk
//! *shard* per bounded run of rows in column order: each fixed-width field
//! occupies one contiguous little-endian array, the variable-width
//! user-agent strings are dictionary-encoded (a `u32` index column plus a
//! per-shard string table), and a fixed-size footer records the row count,
//! per-column byte offsets and a *zone map* (min/max timestamp, publisher
//! bitmask, status-class bitmask) so time/site filters skip whole shards
//! without touching their bytes.
//!
//! Shards are read through `mmap(2)` when available, and column views are
//! zero-copy: an alignment-checked cast re-types the mapped bytes in place.
//! Every column is 8-byte aligned by construction and the mapping is
//! page-aligned, so the checks cannot fail on well-formed shards; corrupt
//! ones are rejected at [`ColumnarShard::open`]. On non-unix targets (or if
//! the map fails) the file is read into an owned 8-byte-aligned buffer and
//! the same views apply.
//!
//! This file is the only module in the workspace allowed to contain
//! `unsafe` (enforced by `oat-lint`'s `unsafe-confinement` rule); the casts
//! are covered by round-trip property tests in `tests/properties.rs`.
//!
//! # Layout
//!
//! ```text
//! [ 8] magic "OATCOL1\n"
//! [ 1] schema code (0 = LogRecord, 1 = Request)
//! [ 1] version (currently 2; v1 shards — no checksum block — still decode)
//! [ 6] zero padding (data starts 8-aligned)
//! per column, in schema order:
//!     zero padding to the next multiple of 8, then rows × width bytes (LE)
//! dictionary: u32 entry count, then per entry u32 byte length + UTF-8 bytes
//! [128] checksum block (version >= 2 only):
//!     u64 × 14  FNV-1a 64 of each column's payload bytes (unused slots 0)
//!     u64       FNV-1a 64 of the dictionary region
//!     u64       FNV-1a 64 of the 176-byte footer
//! [176] footer:
//!     u64       row count
//!     u64 × 14  per-column byte offsets (unused trailing columns are 0)
//!     u64       dictionary offset
//!     u64       zone: min timestamp        (u64::MAX when the shard is empty)
//!     u64       zone: max timestamp
//!     u64       zone: publisher bitmask    (bit = publisher id mod 64)
//!     u64       zone: status-class bitmask (bit = status / 100)
//!     u8        schema code (must equal the header's)
//!     u8        version
//!     u8 × 6    zero padding
//!     [8]       footer magic "OATCFTR\n"
//! ```
//!
//! All integers are little-endian. Signed columns (`tz_offset_secs`) store
//! the two's-complement bit pattern.
//!
//! # Corruption detection
//!
//! Version-2 shards are fully covered against single-byte corruption:
//! magic/schema/version bytes are compared directly, padding bytes are
//! required to be zero, the column and dictionary regions are covered by
//! the checksum block, and the footer (including the zone map) by the
//! trailing footer checksum. [`ColumnarShard::open`] verifies all of it,
//! so a torn or bit-flipped shard surfaces as a *data* error that the
//! lossy directory scan quarantines instead of decoding garbage.
//! [`ShardFileReader`] (the bounded-memory positioned reader) verifies
//! the footer and dictionary checksums but not column payloads — it never
//! reads whole columns; full verification is the mmap reader's job.
//!
//! # Example
//!
//! ```
//! use oat_httplog::codec::columnar::{ColumnBuilder, ColumnarShard, ShardFilter};
//! use oat_httplog::LogRecord;
//!
//! let dir = std::env::temp_dir().join("oat-columnar-doc");
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("example.col");
//!
//! let mut builder = ColumnBuilder::<LogRecord>::new();
//! builder.push(&LogRecord::example())?;
//! builder.write_file(&path)?;
//!
//! let shard = ColumnarShard::open(&path)?;
//! assert_eq!(shard.rows(), 1);
//! let mut out: Vec<LogRecord> = Vec::new();
//! shard.read_matching(&ShardFilter::all(), 0..shard.rows(), &mut out)?;
//! assert_eq!(out, vec![LogRecord::example()]);
//! # std::fs::remove_file(&path)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// The zero-copy column views and the mmap wrapper below are the single
// sanctioned home for `unsafe` in this workspace; see the module docs and
// the `unsafe-confinement` lint rule.
#![allow(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::marker::PhantomData;
use std::ops::Range;
use std::path::Path;

use crate::codec::binary::{format_code, format_from_code};
use crate::durable::{fnv1a64, write_atomic, Fnv1a, IoLayer, RealIo};
use crate::ids::{ObjectId, PopId, PublisherId, UserId};
use crate::record::LogRecord;
use crate::request::{Request, RequestKind};
use crate::status::{CacheStatus, DegradedServe, HttpStatus};
use crate::Region;

/// Leading file magic.
pub const MAGIC: [u8; 8] = *b"OATCOL1\n";
/// Trailing footer magic.
pub const FOOTER_MAGIC: [u8; 8] = *b"OATCFTR\n";
/// Current shard format version (2 = checksummed; 1 = legacy, still
/// readable).
pub const VERSION: u8 = 2;
/// Oldest shard format version this codec still decodes.
pub const MIN_VERSION: u8 = 1;
/// Header length in bytes (magic + schema + version + padding).
pub const HEADER_LEN: usize = 16;
/// Footer length in bytes.
pub const FOOTER_LEN: usize = 176;
/// Checksum-block length in bytes (version >= 2): one `u64` per column
/// slot plus the dictionary and footer checksums.
pub const CHECKSUM_BLOCK_LEN: usize = (MAX_COLS + 2) * 8;
/// Maximum column count across schemas (the footer reserves this many
/// offset slots).
pub const MAX_COLS: usize = 14;

/// Column widths (bytes) for [`Schema::Record`], in column order:
/// timestamp, object, object_size, bytes_served, user, publisher, status,
/// pop, tz_offset, ua index, format, cache, degraded, retries.
const RECORD_WIDTHS: [usize; 14] = [8, 8, 8, 8, 8, 2, 2, 2, 4, 4, 1, 1, 1, 1];

/// Column widths (bytes) for [`Schema::Request`], in column order:
/// timestamp, object, object_size, kind_offset, kind_length, user,
/// publisher, tz_offset, ua index, format, region, incognito, kind.
const REQUEST_WIDTHS: [usize; 13] = [8, 8, 8, 8, 8, 8, 2, 4, 4, 1, 1, 1, 1];

/// Which row type a shard stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Schema {
    /// Finished [`LogRecord`]s (analyzer input).
    Record,
    /// Pre-response [`Request`]s (simulator input).
    Request,
}

impl Schema {
    /// Stable wire code.
    pub const fn code(self) -> u8 {
        match self {
            Schema::Record => 0,
            Schema::Request => 1,
        }
    }

    /// Inverse of [`Schema::code`].
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Schema::Record),
            1 => Some(Schema::Request),
            _ => None,
        }
    }

    /// Per-column byte widths in column order.
    pub const fn widths(self) -> &'static [usize] {
        match self {
            Schema::Record => &RECORD_WIDTHS,
            Schema::Request => &REQUEST_WIDTHS,
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Schema::Record => "record",
            Schema::Request => "request",
        })
    }
}

/// The status class (`status / 100`, 1–5) used in zone maps and
/// [`ShardFilter::status_classes`].
pub fn status_class(status: HttpStatus) -> u8 {
    (status.code() / 100) as u8
}

/// Error reading or writing a columnar shard.
#[derive(Debug)]
pub enum ColumnarError {
    /// Underlying I/O failure (environmental, not data corruption).
    Io(io::Error),
    /// Structurally invalid shard bytes.
    Corrupt {
        /// What failed to validate.
        what: &'static str,
    },
    /// Unknown format version byte.
    UnsupportedVersion {
        /// The version byte found.
        version: u8,
    },
    /// Unknown schema code byte.
    UnknownSchema {
        /// The code found.
        code: u8,
    },
    /// The shard stores a different row type than requested.
    SchemaMismatch {
        /// The schema the caller asked for.
        expected: Schema,
        /// The schema recorded in the shard.
        found: Schema,
    },
    /// A stored field value decodes to no valid domain value.
    InvalidValue {
        /// Row index within the shard.
        row: u64,
        /// Field (column) name.
        field: &'static str,
        /// The raw value found, widened to u64.
        value: u64,
    },
    /// More than `u32::MAX` distinct user-agent strings in one shard.
    DictionaryOverflow,
}

impl ColumnarError {
    /// True for malformed-data errors (anything but [`ColumnarError::Io`]):
    /// the errors a lossy reader may quarantine and skip.
    pub fn is_data_error(&self) -> bool {
        !matches!(self, ColumnarError::Io(_))
    }
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::Io(e) => write!(f, "columnar shard I/O error: {e}"),
            ColumnarError::Corrupt { what } => write!(f, "corrupt columnar shard: {what}"),
            ColumnarError::UnsupportedVersion { version } => {
                write!(f, "unsupported columnar shard version {version}")
            }
            ColumnarError::UnknownSchema { code } => {
                write!(f, "unknown columnar schema code {code}")
            }
            ColumnarError::SchemaMismatch { expected, found } => {
                write!(
                    f,
                    "columnar schema mismatch: expected {expected}, found {found}"
                )
            }
            ColumnarError::InvalidValue { row, field, value } => {
                write!(f, "invalid value {value} for `{field}` at shard row {row}")
            }
            ColumnarError::DictionaryOverflow => {
                f.write_str("user-agent dictionary exceeds u32::MAX entries")
            }
        }
    }
}

impl std::error::Error for ColumnarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ColumnarError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ColumnarError {
    fn from(e: io::Error) -> Self {
        ColumnarError::Io(e)
    }
}

/// Per-shard summary statistics that let filtered scans skip whole shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneMap {
    /// Smallest row timestamp (`u64::MAX` when the shard is empty).
    pub min_timestamp: u64,
    /// Largest row timestamp (0 when the shard is empty).
    pub max_timestamp: u64,
    /// Publisher (site) presence bitmask: bit `publisher mod 64` is set for
    /// every publisher appearing in the shard.
    pub publisher_mask: u64,
    /// Status-class presence bitmask: bit `status / 100` is set for every
    /// response status appearing in the shard. Schemas without a status
    /// column record `u64::MAX` (all classes possible) so status filters
    /// stay conservative.
    pub status_mask: u64,
}

impl ZoneMap {
    /// The zone map of an empty shard.
    pub const fn empty() -> Self {
        ZoneMap {
            min_timestamp: u64::MAX,
            max_timestamp: 0,
            publisher_mask: 0,
            status_mask: 0,
        }
    }

    fn observe(&mut self, timestamp: u64, publisher: PublisherId, status_class: Option<u8>) {
        self.min_timestamp = self.min_timestamp.min(timestamp);
        self.max_timestamp = self.max_timestamp.max(timestamp);
        self.publisher_mask |= 1u64 << (u64::from(publisher.raw()) % 64);
        match status_class {
            Some(class) => self.status_mask |= 1u64 << (u64::from(class) % 64),
            // No status column in this schema: every class is possible.
            None => self.status_mask = u64::MAX,
        }
    }

    /// Whether a shard with this zone map can contain any row matching
    /// `filter`. `false` means the whole shard may be skipped; `true` is
    /// conservative (the shard may still contain zero matching rows).
    pub fn may_match(&self, filter: &ShardFilter) -> bool {
        if let Some(time) = &filter.time {
            // Half-open filter range vs. closed [min, max] zone range.
            if self.min_timestamp > self.max_timestamp {
                return false; // Empty shard.
            }
            if time.start > self.max_timestamp || time.end <= self.min_timestamp {
                return false;
            }
        }
        if let Some(publishers) = &filter.publishers {
            let hit = publishers
                .iter()
                .any(|p| self.publisher_mask & (1u64 << (u64::from(p.raw()) % 64)) != 0);
            if !hit {
                return false;
            }
        }
        if let Some(classes) = &filter.status_classes {
            let hit = classes
                .iter()
                .any(|c| self.status_mask & (1u64 << (u64::from(*c) % 64)) != 0);
            if !hit {
                return false;
            }
        }
        true
    }
}

/// A row predicate evaluated against zone maps (shard granularity) and
/// individual rows. `None` dimensions match everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardFilter {
    /// Half-open timestamp range `[start, end)`.
    pub time: Option<Range<u64>>,
    /// Publisher (site) allow-list.
    pub publishers: Option<Vec<PublisherId>>,
    /// Status-class allow-list (1–5, see [`status_class`]). Ignored for
    /// rows without a status field.
    pub status_classes: Option<Vec<u8>>,
}

impl ShardFilter {
    /// The match-everything filter.
    pub fn all() -> Self {
        ShardFilter::default()
    }

    /// Restricts to rows with `start <= timestamp < end`.
    pub fn with_time(mut self, time: Range<u64>) -> Self {
        self.time = Some(time);
        self
    }

    /// Restricts to rows from the given publishers.
    pub fn with_publishers(mut self, publishers: Vec<PublisherId>) -> Self {
        self.publishers = Some(publishers);
        self
    }

    /// Restricts to rows whose status class (1–5) is listed.
    pub fn with_status_classes(mut self, classes: Vec<u8>) -> Self {
        self.status_classes = Some(classes);
        self
    }

    /// True when no dimension is constrained.
    pub fn is_all(&self) -> bool {
        self.time.is_none() && self.publishers.is_none() && self.status_classes.is_none()
    }

    /// Row-level predicate. Rows without a status field (requests) pass the
    /// status dimension unconditionally, mirroring [`ZoneMap::may_match`].
    pub fn matches<T: ColumnarRow>(&self, row: &T) -> bool {
        if let Some(time) = &self.time {
            if !time.contains(&row.row_timestamp()) {
                return false;
            }
        }
        if let Some(publishers) = &self.publishers {
            if !publishers.contains(&row.row_publisher()) {
                return false;
            }
        }
        if let Some(classes) = &self.status_classes {
            if let Some(class) = row.row_status_class() {
                if !classes.contains(&class) {
                    return false;
                }
            }
        }
        true
    }
}

/// A row type storable in columnar shards.
///
/// Implemented for [`LogRecord`] and [`Request`]; the encode/decode hooks
/// use builder/shard internals private to this module, so downstream crates
/// consume the two provided implementations rather than adding their own.
pub trait ColumnarRow: Sized + Clone + Send + 'static {
    /// The schema tag written into shard headers and footers.
    const SCHEMA: Schema;

    /// Appends this row's fields, in column order, to a shard under
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`ColumnarError::DictionaryOverflow`] when the shard's
    /// user-agent dictionary is full.
    fn append_to(&self, builder: &mut ColumnBuilder<Self>) -> Result<(), ColumnarError>;

    /// Materializes row `index` from an opened shard.
    ///
    /// # Errors
    ///
    /// Returns [`ColumnarError::InvalidValue`] when a stored field decodes
    /// to no valid domain value.
    fn read_row(shard: &ColumnarShard, index: usize) -> Result<Self, ColumnarError>;

    /// Row timestamp (drives zone maps and time filters).
    fn row_timestamp(&self) -> u64;

    /// Row publisher (drives zone maps and site filters).
    fn row_publisher(&self) -> PublisherId;

    /// HTTP status class 1–5, when the row carries a response status.
    fn row_status_class(&self) -> Option<u8>;
}

/// Streaming writer for one columnar shard: rows go in, column buffers
/// accumulate in memory, [`ColumnBuilder::write_file`] lays them out on
/// disk. Peak memory is proportional to the rows buffered, so callers
/// bound it by rotating shards (see `ColumnarDirWriter` in
/// [`crate::shard`]).
#[derive(Debug)]
pub struct ColumnBuilder<T: ColumnarRow> {
    cols: Vec<Vec<u8>>,
    dict: Vec<String>,
    dict_index: BTreeMap<String, u32>,
    dict_bytes: usize,
    rows: usize,
    zone: ZoneMap,
    _row: PhantomData<fn() -> T>,
}

impl<T: ColumnarRow> Default for ColumnBuilder<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: ColumnarRow> ColumnBuilder<T> {
    /// Creates an empty builder for `T`'s schema.
    pub fn new() -> Self {
        ColumnBuilder {
            cols: vec![Vec::new(); T::SCHEMA.widths().len()],
            dict: Vec::new(),
            dict_index: BTreeMap::new(),
            dict_bytes: 0,
            rows: 0,
            zone: ZoneMap::empty(),
            _row: PhantomData,
        }
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// Returns [`ColumnarError::DictionaryOverflow`] when the shard's
    /// user-agent dictionary is full.
    pub fn push(&mut self, row: &T) -> Result<(), ColumnarError> {
        row.append_to(self)?;
        self.zone.observe(
            row.row_timestamp(),
            row.row_publisher(),
            row.row_status_class(),
        );
        self.rows += 1;
        Ok(())
    }

    /// Appends a batch of rows.
    ///
    /// # Errors
    ///
    /// As [`ColumnBuilder::push`].
    pub fn push_batch(&mut self, rows: &[T]) -> Result<(), ColumnarError> {
        for row in rows {
            self.push(row)?;
        }
        Ok(())
    }

    /// Rows buffered so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Approximate bytes currently buffered (columns + dictionary).
    pub fn buffered_bytes(&self) -> usize {
        self.cols.iter().map(Vec::len).sum::<usize>() + self.dict_bytes
    }

    /// The zone map accumulated so far.
    pub fn zone(&self) -> &ZoneMap {
        &self.zone
    }

    /// Drops all buffered rows, keeping allocations for reuse.
    pub fn clear(&mut self) {
        for col in &mut self.cols {
            col.clear();
        }
        self.dict.clear();
        self.dict_index.clear();
        self.dict_bytes = 0;
        self.rows = 0;
        self.zone = ZoneMap::empty();
    }

    /// Serializes the buffered rows as one shard into `w`, at the current
    /// format version (checksummed).
    ///
    /// # Errors
    ///
    /// Returns [`ColumnarError::Io`] on write failure.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), ColumnarError> {
        self.write_to_version(w, VERSION)
    }

    /// Serializes at an explicit format version (1 = legacy, no checksum
    /// block) — exercised by the compatibility tests; production writes
    /// always use [`ColumnBuilder::write_to`].
    fn write_to_version<W: Write + ?Sized>(
        &self,
        w: &mut W,
        version: u8,
    ) -> Result<(), ColumnarError> {
        const ZEROS: [u8; 8] = [0; 8];
        let widths = T::SCHEMA.widths();
        w.write_all(&MAGIC)?;
        w.write_all(&[T::SCHEMA.code(), version, 0, 0, 0, 0, 0, 0])?;

        let mut off = HEADER_LEN as u64;
        let mut col_offsets = [0u64; MAX_COLS];
        let mut col_sums = [0u64; MAX_COLS];
        for (i, col) in self.cols.iter().enumerate() {
            let pad = (8 - (off % 8) as usize) % 8;
            w.write_all(&ZEROS[..pad])?;
            off += pad as u64;
            if let Some(slot) = col_offsets.get_mut(i) {
                *slot = off;
            }
            debug_assert_eq!(col.len(), self.rows * widths.get(i).copied().unwrap_or(0));
            w.write_all(col)?;
            if let Some(slot) = col_sums.get_mut(i) {
                *slot = fnv1a64(col);
            }
            off += col.len() as u64;
        }

        let dict_off = off;
        let mut dict_sum = Fnv1a::new();
        let count = (self.dict.len() as u32).to_le_bytes();
        w.write_all(&count)?;
        dict_sum.update(&count);
        for entry in &self.dict {
            let len = (entry.len() as u32).to_le_bytes();
            w.write_all(&len)?;
            dict_sum.update(&len);
            w.write_all(entry.as_bytes())?;
            dict_sum.update(entry.as_bytes());
        }

        let mut footer = Vec::with_capacity(FOOTER_LEN);
        footer.extend_from_slice(&(self.rows as u64).to_le_bytes());
        for slot in &col_offsets {
            footer.extend_from_slice(&slot.to_le_bytes());
        }
        footer.extend_from_slice(&dict_off.to_le_bytes());
        footer.extend_from_slice(&self.zone.min_timestamp.to_le_bytes());
        footer.extend_from_slice(&self.zone.max_timestamp.to_le_bytes());
        footer.extend_from_slice(&self.zone.publisher_mask.to_le_bytes());
        footer.extend_from_slice(&self.zone.status_mask.to_le_bytes());
        footer.extend_from_slice(&[T::SCHEMA.code(), version, 0, 0, 0, 0, 0, 0]);
        footer.extend_from_slice(&FOOTER_MAGIC);
        debug_assert_eq!(footer.len(), FOOTER_LEN);
        if version >= 2 {
            let mut block = Vec::with_capacity(CHECKSUM_BLOCK_LEN);
            for sum in &col_sums {
                block.extend_from_slice(&sum.to_le_bytes());
            }
            block.extend_from_slice(&dict_sum.digest().to_le_bytes());
            block.extend_from_slice(&fnv1a64(&footer).to_le_bytes());
            debug_assert_eq!(block.len(), CHECKSUM_BLOCK_LEN);
            w.write_all(&block)?;
        }
        w.write_all(&footer)?;
        Ok(())
    }

    /// Writes the buffered rows to a shard file at `path`, durably: the
    /// bytes land under a temporary name and are fsynced before an atomic
    /// rename, so `path` never holds a torn shard (see
    /// [`crate::durable::write_atomic`]).
    ///
    /// # Errors
    ///
    /// Returns [`ColumnarError::Io`] on create/write/fsync/rename failure.
    pub fn write_file(&self, path: &Path) -> Result<(), ColumnarError> {
        self.write_file_with(path, &RealIo)
    }

    /// As [`ColumnBuilder::write_file`], with every storage operation
    /// checked against `io` — the seam the kill-anywhere recovery tests
    /// inject failures through.
    ///
    /// # Errors
    ///
    /// As [`ColumnBuilder::write_file`], including injected failures.
    pub fn write_file_with(&self, path: &Path, io: &dyn IoLayer) -> Result<(), ColumnarError> {
        write_atomic(io, path, |w| match self.write_to_version(w, VERSION) {
            Ok(()) => Ok(()),
            Err(ColumnarError::Io(e)) => Err(e),
            Err(other) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                other.to_string(),
            )),
        })?;
        Ok(())
    }

    /// Writes a shard at an explicit (possibly legacy) format version —
    /// test-only, for footer-version compatibility coverage.
    #[cfg(test)]
    pub(crate) fn write_file_version(&self, path: &Path, version: u8) -> Result<(), ColumnarError> {
        let file = File::create(path)?;
        let mut w = io::BufWriter::new(file);
        self.write_to_version(&mut w, version)?;
        w.flush()?;
        Ok(())
    }

    /// Interns a user-agent string, returning its dictionary index.
    fn intern_user_agent(&mut self, ua: &str) -> Result<u32, ColumnarError> {
        if let Some(&idx) = self.dict_index.get(ua) {
            return Ok(idx);
        }
        let idx = u32::try_from(self.dict.len()).map_err(|_| ColumnarError::DictionaryOverflow)?;
        if idx == u32::MAX {
            return Err(ColumnarError::DictionaryOverflow);
        }
        self.dict.push(ua.to_string());
        self.dict_index.insert(ua.to_string(), idx);
        self.dict_bytes += ua.len() + 4;
        Ok(idx)
    }

    fn put(&mut self, col: usize, bytes: &[u8]) {
        if let Some(buf) = self.cols.get_mut(col) {
            buf.extend_from_slice(bytes);
        } else {
            debug_assert!(false, "column index {col} out of range");
        }
    }

    fn put_u64(&mut self, col: usize, v: u64) {
        self.put(col, &v.to_le_bytes());
    }

    fn put_u32(&mut self, col: usize, v: u32) {
        self.put(col, &v.to_le_bytes());
    }

    fn put_u16(&mut self, col: usize, v: u16) {
        self.put(col, &v.to_le_bytes());
    }

    fn put_i32(&mut self, col: usize, v: i32) {
        self.put(col, &v.to_le_bytes());
    }

    fn put_u8(&mut self, col: usize, v: u8) {
        self.put(col, &[v]);
    }
}

// ---------------------------------------------------------------------------
// Row codecs.
// ---------------------------------------------------------------------------

impl ColumnarRow for LogRecord {
    const SCHEMA: Schema = Schema::Record;

    fn append_to(&self, b: &mut ColumnBuilder<Self>) -> Result<(), ColumnarError> {
        let ua = b.intern_user_agent(&self.user_agent)?;
        b.put_u64(0, self.timestamp);
        b.put_u64(1, self.object.raw());
        b.put_u64(2, self.object_size);
        b.put_u64(3, self.bytes_served);
        b.put_u64(4, self.user.raw());
        b.put_u16(5, self.publisher.raw());
        b.put_u16(6, self.status.code());
        b.put_u16(7, self.pop.raw());
        b.put_i32(8, self.tz_offset_secs);
        b.put_u32(9, ua);
        b.put_u8(10, format_code(self.format));
        b.put_u8(11, if self.cache_status.is_hit() { 1 } else { 0 });
        b.put_u8(12, self.degraded.code());
        b.put_u8(13, self.retries);
        Ok(())
    }

    fn read_row(shard: &ColumnarShard, i: usize) -> Result<Self, ColumnarError> {
        let row = i as u64;
        let format_raw = shard.u8_at(10, i)?;
        let format = format_from_code(format_raw).ok_or(ColumnarError::InvalidValue {
            row,
            field: "format",
            value: u64::from(format_raw),
        })?;
        let cache_raw = shard.u8_at(11, i)?;
        let cache_status = match cache_raw {
            0 => CacheStatus::Miss,
            1 => CacheStatus::Hit,
            other => {
                return Err(ColumnarError::InvalidValue {
                    row,
                    field: "cache_status",
                    value: u64::from(other),
                })
            }
        };
        let status_raw = shard.u16_at(6, i)?;
        let status = HttpStatus::new(status_raw).map_err(|_| ColumnarError::InvalidValue {
            row,
            field: "status",
            value: u64::from(status_raw),
        })?;
        let degraded_raw = shard.u8_at(12, i)?;
        let degraded =
            DegradedServe::from_code(degraded_raw).ok_or(ColumnarError::InvalidValue {
                row,
                field: "degraded",
                value: u64::from(degraded_raw),
            })?;
        Ok(LogRecord {
            timestamp: shard.u64_at(0, i)?,
            publisher: PublisherId::new(shard.u16_at(5, i)?),
            object: ObjectId::new(shard.u64_at(1, i)?),
            format,
            object_size: shard.u64_at(2, i)?,
            bytes_served: shard.u64_at(3, i)?,
            user: UserId::new(shard.u64_at(4, i)?),
            user_agent: shard.user_agent_at(9, i)?,
            cache_status,
            status,
            pop: PopId::new(shard.u16_at(7, i)?),
            tz_offset_secs: shard.i32_at(8, i)?,
            degraded,
            retries: shard.u8_at(13, i)?,
        })
    }

    fn row_timestamp(&self) -> u64 {
        self.timestamp
    }

    fn row_publisher(&self) -> PublisherId {
        self.publisher
    }

    fn row_status_class(&self) -> Option<u8> {
        Some(status_class(self.status))
    }
}

/// Stable wire codes for [`RequestKind`] discriminants.
const KIND_FULL: u8 = 0;
const KIND_RANGE: u8 = 1;
const KIND_CONDITIONAL: u8 = 2;
const KIND_INVALID_RANGE: u8 = 3;
const KIND_HOTLINK: u8 = 4;
const KIND_BEACON: u8 = 5;

impl ColumnarRow for Request {
    const SCHEMA: Schema = Schema::Request;

    fn append_to(&self, b: &mut ColumnBuilder<Self>) -> Result<(), ColumnarError> {
        let ua = b.intern_user_agent(&self.user_agent)?;
        let (kind, kind_offset, kind_length) = match self.kind {
            RequestKind::Full => (KIND_FULL, 0, 0),
            RequestKind::Range { offset, length } => (KIND_RANGE, offset, length),
            RequestKind::Conditional => (KIND_CONDITIONAL, 0, 0),
            RequestKind::InvalidRange => (KIND_INVALID_RANGE, 0, 0),
            RequestKind::Hotlink => (KIND_HOTLINK, 0, 0),
            RequestKind::Beacon => (KIND_BEACON, 0, 0),
        };
        b.put_u64(0, self.timestamp);
        b.put_u64(1, self.object.raw());
        b.put_u64(2, self.object_size);
        b.put_u64(3, kind_offset);
        b.put_u64(4, kind_length);
        b.put_u64(5, self.user.raw());
        b.put_u16(6, self.publisher.raw());
        b.put_i32(7, self.tz_offset_secs);
        b.put_u32(8, ua);
        b.put_u8(9, format_code(self.format));
        b.put_u8(10, self.region.code());
        b.put_u8(11, u8::from(self.incognito));
        b.put_u8(12, kind);
        Ok(())
    }

    fn read_row(shard: &ColumnarShard, i: usize) -> Result<Self, ColumnarError> {
        let row = i as u64;
        let format_raw = shard.u8_at(9, i)?;
        let format = format_from_code(format_raw).ok_or(ColumnarError::InvalidValue {
            row,
            field: "format",
            value: u64::from(format_raw),
        })?;
        let region_raw = shard.u8_at(10, i)?;
        let region = Region::from_code(region_raw).ok_or(ColumnarError::InvalidValue {
            row,
            field: "region",
            value: u64::from(region_raw),
        })?;
        let incognito_raw = shard.u8_at(11, i)?;
        let incognito = match incognito_raw {
            0 => false,
            1 => true,
            other => {
                return Err(ColumnarError::InvalidValue {
                    row,
                    field: "incognito",
                    value: u64::from(other),
                })
            }
        };
        let kind_raw = shard.u8_at(12, i)?;
        let kind = match kind_raw {
            KIND_FULL => RequestKind::Full,
            KIND_RANGE => RequestKind::Range {
                offset: shard.u64_at(3, i)?,
                length: shard.u64_at(4, i)?,
            },
            KIND_CONDITIONAL => RequestKind::Conditional,
            KIND_INVALID_RANGE => RequestKind::InvalidRange,
            KIND_HOTLINK => RequestKind::Hotlink,
            KIND_BEACON => RequestKind::Beacon,
            other => {
                return Err(ColumnarError::InvalidValue {
                    row,
                    field: "kind",
                    value: u64::from(other),
                })
            }
        };
        Ok(Request {
            timestamp: shard.u64_at(0, i)?,
            publisher: PublisherId::new(shard.u16_at(6, i)?),
            object: ObjectId::new(shard.u64_at(1, i)?),
            format,
            object_size: shard.u64_at(2, i)?,
            user: UserId::new(shard.u64_at(5, i)?),
            user_agent: shard.user_agent_at(8, i)?,
            region,
            tz_offset_secs: shard.i32_at(7, i)?,
            incognito,
            kind,
        })
    }

    fn row_timestamp(&self) -> u64 {
        self.timestamp
    }

    fn row_publisher(&self) -> PublisherId {
        self.publisher
    }

    fn row_status_class(&self) -> Option<u8> {
        None
    }
}

// ---------------------------------------------------------------------------
// Shard bytes: mmap with an owned aligned fallback.
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod mm {
    //! Minimal read-only `mmap(2)` wrapper over raw syscalls — the
    //! container environment provides no `libc`/`memmap` crate, so the two
    //! symbols are declared directly (the same pattern the repro binary
    //! uses for `signal(2)`).

    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: isize,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// A read-only, private, whole-file mapping. Unmapped on drop.
    #[derive(Debug)]
    pub(super) struct Mapping {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is read-only (PROT_READ) and private; the pages
    // never change under us and carry no thread affinity.
    unsafe impl Send for Mapping {}
    // SAFETY: as above — concurrent reads of immutable pages are safe.
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps `len` bytes of `file` read-only, or `None` if the kernel
        /// refuses (callers then fall back to an owned read). `len` must be
        /// non-zero: zero-length maps are `EINVAL` by spec.
        pub(super) fn map(file: &File, len: usize) -> Option<Mapping> {
            if len == 0 {
                return None;
            }
            // SAFETY: a NULL addr asks the kernel to pick the placement;
            // the fd is open for reading and outlives the call (the pages
            // stay valid after close); PROT_READ|MAP_PRIVATE cannot alias
            // writable memory.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                return None;
            }
            Some(Mapping {
                ptr: ptr.cast_const().cast::<u8>(),
                len,
            })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, established in `map` and released only in `drop`.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe the mapping created in `map`;
            // it is unmapped exactly once.
            let _ = unsafe { munmap(self.ptr.cast_mut().cast::<c_void>(), self.len) };
        }
    }
}

/// The raw bytes of one shard: an mmap'd view where available, otherwise an
/// owned 8-byte-aligned buffer. Either way [`ShardBytes::as_slice`] starts
/// 8-byte aligned, which the zero-copy column views rely on.
#[derive(Debug)]
pub struct ShardBytes {
    repr: Repr,
}

#[derive(Debug)]
enum Repr {
    #[cfg(unix)]
    Mapped(mm::Mapping),
    Owned {
        /// `u64` backing storage guarantees 8-byte alignment.
        buf: Vec<u64>,
        len: usize,
    },
}

impl ShardBytes {
    /// Opens `path` and maps (or reads) its full contents.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on open/stat/read failure.
    pub fn open(path: &Path) -> io::Result<ShardBytes> {
        let mut file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "shard exceeds usize"))?;
        #[cfg(unix)]
        if let Some(mapping) = mm::Mapping::map(&file, len) {
            return Ok(ShardBytes {
                repr: Repr::Mapped(mapping),
            });
        }
        Self::read_owned(&mut file, len)
    }

    fn read_owned(file: &mut File, len: usize) -> io::Result<ShardBytes> {
        let mut buf = vec![0u64; len.div_ceil(8)];
        if len > 0 {
            // SAFETY: a `u64` buffer of ⌈len/8⌉ elements spans at least
            // `len` initialized bytes; viewing them as `u8` is always valid.
            let bytes = unsafe {
                std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), buf.len() * 8)
            };
            file.read_exact(&mut bytes[..len])?;
        }
        Ok(ShardBytes {
            repr: Repr::Owned { buf, len },
        })
    }

    /// Whether the bytes are an actual memory mapping (as opposed to the
    /// owned-buffer fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            #[cfg(unix)]
            Repr::Mapped(_) => true,
            Repr::Owned { .. } => false,
        }
    }

    /// The shard bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            #[cfg(unix)]
            Repr::Mapped(m) => m.as_slice(),
            Repr::Owned { buf, len } => {
                // SAFETY: `buf` spans at least `len` initialized bytes (see
                // `read_owned`), and `u64 -> u8` reinterpretation is valid.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len) }
            }
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the shard holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Marker for primitive types whose byte layout lets shard bytes be
/// reinterpreted in place: no padding, no invalid bit patterns, alignment
/// at most 8.
#[cfg(target_endian = "little")]
trait Pod: Copy {}
#[cfg(target_endian = "little")]
mod pod_impls {
    impl super::Pod for u8 {}
    impl super::Pod for u16 {}
    impl super::Pod for u32 {}
    impl super::Pod for u64 {}
    impl super::Pod for i32 {}
}

/// Reinterprets `bytes` as a slice of `T` without copying.
///
/// Only sound on little-endian targets for multi-byte `T` (the on-disk
/// layout is little-endian); callers gate on `cfg(target_endian)`.
#[cfg(target_endian = "little")]
fn cast_slice<T: Pod>(bytes: &[u8]) -> Result<&[T], ColumnarError> {
    let size = std::mem::size_of::<T>();
    if size == 0 || bytes.len() % size != 0 {
        return Err(ColumnarError::Corrupt {
            what: "column byte length is not a multiple of the element width",
        });
    }
    if (bytes.as_ptr() as usize) % std::mem::align_of::<T>() != 0 {
        return Err(ColumnarError::Corrupt {
            what: "column bytes are not aligned for a zero-copy view",
        });
    }
    // SAFETY: `T: Pod` admits every bit pattern and has no padding; the
    // pointer is checked aligned for `T` just above; the length is an exact
    // multiple of `size_of::<T>()`; the lifetime is inherited from `bytes`.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / size) })
}

// ---------------------------------------------------------------------------
// Shard reader.
// ---------------------------------------------------------------------------

/// One opened columnar shard: validated structure, parsed dictionary, and
/// zero-copy access to the column bytes.
#[derive(Debug)]
pub struct ColumnarShard {
    bytes: ShardBytes,
    rows: usize,
    schema: Schema,
    col_offsets: [usize; MAX_COLS],
    dict: Vec<String>,
    zone: ZoneMap,
}

impl ColumnarShard {
    /// Opens and validates the shard at `path`.
    ///
    /// # Errors
    ///
    /// [`ColumnarError::Io`] on I/O failure; [`ColumnarError::Corrupt`],
    /// [`ColumnarError::UnsupportedVersion`] or
    /// [`ColumnarError::UnknownSchema`] when the bytes are not a
    /// well-formed shard.
    pub fn open(path: &Path) -> Result<ColumnarShard, ColumnarError> {
        Self::parse(ShardBytes::open(path)?)
    }

    /// Validates already-loaded shard bytes.
    ///
    /// # Errors
    ///
    /// As [`ColumnarShard::open`], minus the I/O cases.
    pub fn parse(bytes: ShardBytes) -> Result<ColumnarShard, ColumnarError> {
        let data = bytes.as_slice();
        let len = data.len();
        if len < HEADER_LEN + FOOTER_LEN {
            return Err(ColumnarError::Corrupt {
                what: "file shorter than header + footer",
            });
        }
        if data.get(..8) != Some(&MAGIC[..]) {
            return Err(ColumnarError::Corrupt {
                what: "bad file magic",
            });
        }
        let header_schema = read_u8(data, 8)?;
        let header_version = read_u8(data, 9)?;

        let footer_start = len - FOOTER_LEN;
        if data.get(len - 8..) != Some(&FOOTER_MAGIC[..]) {
            return Err(ColumnarError::Corrupt {
                what: "bad footer magic",
            });
        }
        let mut at = footer_start;
        let rows_raw = read_u64(data, at)?;
        at += 8;
        let mut col_offsets_raw = [0u64; MAX_COLS];
        for slot in &mut col_offsets_raw {
            *slot = read_u64(data, at)?;
            at += 8;
        }
        let dict_off_raw = read_u64(data, at)?;
        at += 8;
        let zone = ZoneMap {
            min_timestamp: read_u64(data, at)?,
            max_timestamp: read_u64(data, at + 8)?,
            publisher_mask: read_u64(data, at + 16)?,
            status_mask: read_u64(data, at + 24)?,
        };
        at += 32;
        let footer_schema = read_u8(data, at)?;
        let footer_version = read_u8(data, at + 1)?;

        if header_version < MIN_VERSION || header_version > VERSION {
            return Err(ColumnarError::UnsupportedVersion {
                version: header_version,
            });
        }
        if footer_version != header_version {
            return Err(ColumnarError::Corrupt {
                what: "footer version disagrees with header",
            });
        }
        let schema = Schema::from_code(header_schema).ok_or(ColumnarError::UnknownSchema {
            code: header_schema,
        })?;
        if footer_schema != header_schema {
            return Err(ColumnarError::Corrupt {
                what: "footer schema disagrees with header",
            });
        }
        // Checksummed shards end with [checksum block][footer]; the body
        // (columns + dictionary) stops where the block starts. Their
        // padding bytes are zero by construction, and verified so that
        // every byte of the file is covered by some check.
        let body_end = if header_version >= 2 {
            if data
                .get(10..HEADER_LEN)
                .is_some_and(|pad| pad.iter().any(|&b| b != 0))
            {
                return Err(ColumnarError::Corrupt {
                    what: "header padding is non-zero",
                });
            }
            footer_start
                .checked_sub(CHECKSUM_BLOCK_LEN)
                .filter(|&e| e >= HEADER_LEN)
                .ok_or(ColumnarError::Corrupt {
                    what: "file shorter than header + checksum block + footer",
                })?
        } else {
            footer_start
        };

        let rows = usize::try_from(rows_raw).map_err(|_| ColumnarError::Corrupt {
            what: "row count exceeds usize",
        })?;
        let dict_off = usize::try_from(dict_off_raw).map_err(|_| ColumnarError::Corrupt {
            what: "dictionary offset exceeds usize",
        })?;
        if dict_off < HEADER_LEN || dict_off > body_end {
            return Err(ColumnarError::Corrupt {
                what: "dictionary offset out of bounds",
            });
        }

        let widths = schema.widths();
        let mut col_offsets = [0usize; MAX_COLS];
        let mut prev_end = HEADER_LEN;
        for (i, &width) in widths.iter().enumerate() {
            let off_raw = col_offsets_raw.get(i).copied().unwrap_or(0);
            let off = usize::try_from(off_raw).map_err(|_| ColumnarError::Corrupt {
                what: "column offset exceeds usize",
            })?;
            if off % 8 != 0 || off < prev_end {
                return Err(ColumnarError::Corrupt {
                    what: "column offset misordered or misaligned",
                });
            }
            let col_len = rows.checked_mul(width).ok_or(ColumnarError::Corrupt {
                what: "column length overflows",
            })?;
            let end = off.checked_add(col_len).ok_or(ColumnarError::Corrupt {
                what: "column extent overflows",
            })?;
            if end > dict_off {
                return Err(ColumnarError::Corrupt {
                    what: "column extends past the dictionary",
                });
            }
            if let Some(slot) = col_offsets.get_mut(i) {
                *slot = off;
            }
            prev_end = end;
        }
        // Trailing (unused) footer slots must be zero.
        if col_offsets_raw
            .get(widths.len()..)
            .is_some_and(|rest| rest.iter().any(|&o| o != 0))
        {
            return Err(ColumnarError::Corrupt {
                what: "unused column-offset slots are non-zero",
            });
        }

        if header_version >= 2 {
            verify_checksums(data, rows, widths, &col_offsets, dict_off, body_end)?;
        }

        let dict = parse_dict(data, dict_off, body_end)?;

        let shard = ColumnarShard {
            bytes,
            rows,
            schema,
            col_offsets,
            dict,
            zone,
        };
        // Every user-agent index must resolve; checking once here keeps the
        // per-row decode path panic- and surprise-free.
        let ua_col = match schema {
            Schema::Record => 9,
            Schema::Request => 8,
        };
        let dict_len = shard.dict.len() as u32;
        for i in 0..rows {
            let idx = shard.u32_at(ua_col, i)?;
            if idx >= dict_len {
                return Err(ColumnarError::InvalidValue {
                    row: i as u64,
                    field: "user_agent",
                    value: u64::from(idx),
                });
            }
        }
        Ok(shard)
    }

    /// As [`ColumnarShard::open`], additionally requiring the shard to
    /// store `expected` rows.
    ///
    /// # Errors
    ///
    /// As [`ColumnarShard::open`], plus [`ColumnarError::SchemaMismatch`].
    pub fn open_expecting(path: &Path, expected: Schema) -> Result<ColumnarShard, ColumnarError> {
        let shard = Self::open(path)?;
        if shard.schema != expected {
            return Err(ColumnarError::SchemaMismatch {
                expected,
                found: shard.schema,
            });
        }
        Ok(shard)
    }

    /// Number of rows stored.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The row schema stored.
    pub fn schema(&self) -> Schema {
        self.schema
    }

    /// The shard's zone map.
    pub fn zone(&self) -> &ZoneMap {
        &self.zone
    }

    /// The per-shard user-agent dictionary, in index order.
    pub fn user_agent_dict(&self) -> &[String] {
        &self.dict
    }

    /// Whether the shard bytes are memory-mapped (vs. the owned fallback).
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// Raw bytes of column `col` (validated at open).
    fn col_bytes(&self, col: usize) -> Result<&[u8], ColumnarError> {
        let width = self
            .schema
            .widths()
            .get(col)
            .copied()
            .ok_or(ColumnarError::Corrupt {
                what: "column index out of range",
            })?;
        let off = self.col_offsets.get(col).copied().unwrap_or(0);
        self.bytes
            .as_slice()
            .get(off..off + self.rows * width)
            .ok_or(ColumnarError::Corrupt {
                what: "column bytes out of range",
            })
    }

    fn u64_at(&self, col: usize, i: usize) -> Result<u64, ColumnarError> {
        let bytes = self.col_bytes(col)?;
        read_u64(bytes, i * 8)
    }

    fn u32_at(&self, col: usize, i: usize) -> Result<u32, ColumnarError> {
        let bytes = self.col_bytes(col)?;
        read_u32(bytes, i * 4)
    }

    fn u16_at(&self, col: usize, i: usize) -> Result<u16, ColumnarError> {
        let bytes = self.col_bytes(col)?;
        read_u16(bytes, i * 2)
    }

    fn i32_at(&self, col: usize, i: usize) -> Result<i32, ColumnarError> {
        Ok(self.u32_at(col, i)? as i32)
    }

    fn u8_at(&self, col: usize, i: usize) -> Result<u8, ColumnarError> {
        let bytes = self.col_bytes(col)?;
        bytes.get(i).copied().ok_or(ColumnarError::Corrupt {
            what: "row index out of range",
        })
    }

    fn user_agent_at(&self, col: usize, i: usize) -> Result<String, ColumnarError> {
        let idx = self.u32_at(col, i)?;
        self.dict
            .get(idx as usize)
            .cloned()
            .ok_or(ColumnarError::InvalidValue {
                row: i as u64,
                field: "user_agent",
                value: u64::from(idx),
            })
    }

    /// Zero-copy view of the timestamp column.
    ///
    /// # Errors
    ///
    /// Returns [`ColumnarError::Corrupt`] if the column bytes cannot be
    /// viewed in place (never on shards validated by `open`).
    #[cfg(target_endian = "little")]
    pub fn timestamps(&self) -> Result<&[u64], ColumnarError> {
        cast_slice(self.col_bytes(0)?)
    }

    /// Zero-copy view of the object-id column.
    ///
    /// # Errors
    ///
    /// As [`ColumnarShard::timestamps`].
    #[cfg(target_endian = "little")]
    pub fn objects(&self) -> Result<&[u64], ColumnarError> {
        cast_slice(self.col_bytes(1)?)
    }

    /// Zero-copy view of the object-size column.
    ///
    /// # Errors
    ///
    /// As [`ColumnarShard::timestamps`].
    #[cfg(target_endian = "little")]
    pub fn object_sizes(&self) -> Result<&[u64], ColumnarError> {
        cast_slice(self.col_bytes(2)?)
    }

    /// Zero-copy view of the user-id column.
    ///
    /// # Errors
    ///
    /// As [`ColumnarShard::timestamps`].
    #[cfg(target_endian = "little")]
    pub fn users(&self) -> Result<&[u64], ColumnarError> {
        let col = match self.schema {
            Schema::Record => 4,
            Schema::Request => 5,
        };
        cast_slice(self.col_bytes(col)?)
    }

    /// Zero-copy view of the publisher column.
    ///
    /// # Errors
    ///
    /// As [`ColumnarShard::timestamps`].
    #[cfg(target_endian = "little")]
    pub fn publishers(&self) -> Result<&[u16], ColumnarError> {
        let col = match self.schema {
            Schema::Record => 5,
            Schema::Request => 6,
        };
        cast_slice(self.col_bytes(col)?)
    }

    /// Zero-copy view of the HTTP-status column ([`Schema::Record`] only).
    ///
    /// # Errors
    ///
    /// [`ColumnarError::SchemaMismatch`] on request shards, otherwise as
    /// [`ColumnarShard::timestamps`].
    #[cfg(target_endian = "little")]
    pub fn statuses(&self) -> Result<&[u16], ColumnarError> {
        if self.schema != Schema::Record {
            return Err(ColumnarError::SchemaMismatch {
                expected: Schema::Record,
                found: self.schema,
            });
        }
        cast_slice(self.col_bytes(6)?)
    }

    /// Materializes rows `range` (clamped to the shard) into `out`,
    /// appending. `out` is not cleared.
    ///
    /// # Errors
    ///
    /// [`ColumnarError::SchemaMismatch`] when `T` is not the stored row
    /// type; [`ColumnarError::InvalidValue`] on undecodable fields.
    pub fn read_rows<T: ColumnarRow>(
        &self,
        range: Range<usize>,
        out: &mut Vec<T>,
    ) -> Result<(), ColumnarError> {
        self.read_matching(&ShardFilter::all(), range, out)
    }

    /// Materializes the rows of `range` (clamped to the shard) that match
    /// `filter` into `out`, appending. Filter dimensions are tested on the
    /// raw columns first, so non-matching rows are never materialized.
    ///
    /// # Errors
    ///
    /// As [`ColumnarShard::read_rows`].
    pub fn read_matching<T: ColumnarRow>(
        &self,
        filter: &ShardFilter,
        range: Range<usize>,
        out: &mut Vec<T>,
    ) -> Result<(), ColumnarError> {
        if T::SCHEMA != self.schema {
            return Err(ColumnarError::SchemaMismatch {
                expected: T::SCHEMA,
                found: self.schema,
            });
        }
        let start = range.start.min(self.rows);
        let end = range.end.min(self.rows);
        for i in start..end {
            if !self.row_matches(filter, i)? {
                continue;
            }
            out.push(T::read_row(self, i)?);
        }
        Ok(())
    }

    /// Evaluates `filter` on row `i` using raw column reads only.
    fn row_matches(&self, filter: &ShardFilter, i: usize) -> Result<bool, ColumnarError> {
        if let Some(time) = &filter.time {
            if !time.contains(&self.u64_at(0, i)?) {
                return Ok(false);
            }
        }
        if let Some(publishers) = &filter.publishers {
            let col = match self.schema {
                Schema::Record => 5,
                Schema::Request => 6,
            };
            let publisher = PublisherId::new(self.u16_at(col, i)?);
            if !publishers.contains(&publisher) {
                return Ok(false);
            }
        }
        if let Some(classes) = &filter.status_classes {
            if self.schema == Schema::Record {
                let class = (self.u16_at(6, i)? / 100) as u8;
                if !classes.contains(&class) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }
}

/// Verifies a version-2 shard's checksum block and padding bytes. Column
/// extents must already have been bounds-checked against `dict_off`.
fn verify_checksums(
    data: &[u8],
    rows: usize,
    widths: &[usize],
    col_offsets: &[usize; MAX_COLS],
    dict_off: usize,
    body_end: usize,
) -> Result<(), ColumnarError> {
    // Padding (between header/columns and before the dictionary) is zero
    // by construction; anything else is corruption the checksums cannot
    // see, so it is rejected here.
    let mut prev_end = HEADER_LEN;
    for (i, &width) in widths.iter().enumerate() {
        let off = col_offsets.get(i).copied().unwrap_or(0);
        if data
            .get(prev_end..off)
            .is_some_and(|gap| gap.iter().any(|&b| b != 0))
        {
            return Err(ColumnarError::Corrupt {
                what: "column padding is non-zero",
            });
        }
        prev_end = off + rows * width;
    }
    if data
        .get(prev_end..dict_off)
        .is_some_and(|gap| gap.iter().any(|&b| b != 0))
    {
        return Err(ColumnarError::Corrupt {
            what: "padding before the dictionary is non-zero",
        });
    }

    let footer_start = body_end + CHECKSUM_BLOCK_LEN;
    let mut at = body_end;
    for i in 0..MAX_COLS {
        let stored = read_u64(data, at)?;
        at += 8;
        if let Some(&width) = widths.get(i) {
            let off = col_offsets.get(i).copied().unwrap_or(0);
            let col = data
                .get(off..off + rows * width)
                .ok_or(ColumnarError::Corrupt {
                    what: "column bytes out of range",
                })?;
            if fnv1a64(col) != stored {
                return Err(ColumnarError::Corrupt {
                    what: "column checksum mismatch",
                });
            }
        } else if stored != 0 {
            return Err(ColumnarError::Corrupt {
                what: "unused checksum slots are non-zero",
            });
        }
    }
    let dict_stored = read_u64(data, at)?;
    at += 8;
    let dict_bytes = data.get(dict_off..body_end).ok_or(ColumnarError::Corrupt {
        what: "dictionary bytes out of range",
    })?;
    if fnv1a64(dict_bytes) != dict_stored {
        return Err(ColumnarError::Corrupt {
            what: "dictionary checksum mismatch",
        });
    }
    let footer_stored = read_u64(data, at)?;
    let footer_bytes = data.get(footer_start..).ok_or(ColumnarError::Corrupt {
        what: "footer bytes out of range",
    })?;
    if fnv1a64(footer_bytes) != footer_stored {
        return Err(ColumnarError::Corrupt {
            what: "footer checksum mismatch",
        });
    }
    Ok(())
}

fn parse_dict(data: &[u8], dict_off: usize, end: usize) -> Result<Vec<String>, ColumnarError> {
    let mut at = dict_off;
    if at + 4 > end {
        return Err(ColumnarError::Corrupt {
            what: "dictionary header truncated",
        });
    }
    let count = read_u32(data, at)? as usize;
    at += 4;
    let mut dict = Vec::new();
    for _ in 0..count {
        if at + 4 > end {
            return Err(ColumnarError::Corrupt {
                what: "dictionary entry header truncated",
            });
        }
        let len = read_u32(data, at)? as usize;
        at += 4;
        let bytes = data
            .get(
                at..at.checked_add(len).ok_or(ColumnarError::Corrupt {
                    what: "dictionary entry length overflows",
                })?,
            )
            .ok_or(ColumnarError::Corrupt {
                what: "dictionary entry truncated",
            })?;
        if at + len > end {
            return Err(ColumnarError::Corrupt {
                what: "dictionary entry extends past the footer",
            });
        }
        let s = std::str::from_utf8(bytes).map_err(|_| ColumnarError::Corrupt {
            what: "dictionary entry is not valid UTF-8",
        })?;
        dict.push(s.to_string());
        at += len;
    }
    if at != end {
        return Err(ColumnarError::Corrupt {
            what: "trailing bytes between dictionary and footer",
        });
    }
    Ok(dict)
}

fn read_u8(data: &[u8], at: usize) -> Result<u8, ColumnarError> {
    data.get(at).copied().ok_or(ColumnarError::Corrupt {
        what: "read past end of shard",
    })
}

fn read_u16(data: &[u8], at: usize) -> Result<u16, ColumnarError> {
    let b = data
        .get(at..at.checked_add(2).ok_or(OVERFLOW)?)
        .ok_or(ColumnarError::Corrupt {
            what: "read past end of shard",
        })?;
    let mut a = [0u8; 2];
    a.copy_from_slice(b);
    Ok(u16::from_le_bytes(a))
}

fn read_u32(data: &[u8], at: usize) -> Result<u32, ColumnarError> {
    let b = data
        .get(at..at.checked_add(4).ok_or(OVERFLOW)?)
        .ok_or(ColumnarError::Corrupt {
            what: "read past end of shard",
        })?;
    let mut a = [0u8; 4];
    a.copy_from_slice(b);
    Ok(u32::from_le_bytes(a))
}

fn read_u64(data: &[u8], at: usize) -> Result<u64, ColumnarError> {
    let b = data
        .get(at..at.checked_add(8).ok_or(OVERFLOW)?)
        .ok_or(ColumnarError::Corrupt {
            what: "read past end of shard",
        })?;
    let mut a = [0u8; 8];
    a.copy_from_slice(b);
    Ok(u64::from_le_bytes(a))
}

const OVERFLOW: ColumnarError = ColumnarError::Corrupt {
    what: "offset arithmetic overflows",
};

// ---------------------------------------------------------------------------
// Bounded-memory file readers (no mmap).
// ---------------------------------------------------------------------------

/// Footer-only metadata of one shard file.
///
/// [`read_shard_footer`] recovers it in `O(1)` — two fixed-size positioned
/// reads — where [`ColumnarShard::open`] maps the whole file and validates
/// every row's dictionary index. External merge planners use it to learn
/// the row counts and time ranges of many run files cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFooter {
    /// Rows stored in the shard.
    pub rows: u64,
    /// Which row type the shard stores.
    pub schema: Schema,
    /// The shard's zone map.
    pub zone: ZoneMap,
    /// Format version the shard was written with.
    pub version: u8,
    /// Content checksums (`None` on legacy version-1 shards).
    pub checksums: Option<ShardChecksums>,
}

/// The FNV-1a 64 checksums a version-2 shard carries (see the module docs
/// for exactly which byte ranges each covers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardChecksums {
    /// Per-column payload checksums; unused trailing slots are zero.
    pub cols: [u64; MAX_COLS],
    /// Checksum of the dictionary region.
    pub dict: u64,
    /// Checksum of the 176-byte footer.
    pub footer: u64,
}

/// Header + footer metadata of a shard file, parsed without touching the
/// body. Mirrors the structural checks of [`ColumnarShard::parse`]; the
/// per-row dictionary-index validation is deferred to window reads.
#[derive(Debug, Clone, Copy)]
struct FileMeta {
    rows: usize,
    schema: Schema,
    zone: ZoneMap,
    col_offsets: [usize; MAX_COLS],
    dict_off: usize,
    /// Where the body (columns + dictionary) ends: the checksum block on
    /// v2 shards, the footer on v1.
    body_end: usize,
    version: u8,
    checksums: Option<ShardChecksums>,
}

fn read_file_meta(file: &mut File) -> Result<FileMeta, ColumnarError> {
    use std::io::{Seek, SeekFrom};
    let len = usize::try_from(file.metadata()?.len()).map_err(|_| ColumnarError::Corrupt {
        what: "shard exceeds usize",
    })?;
    if len < HEADER_LEN + FOOTER_LEN {
        return Err(ColumnarError::Corrupt {
            what: "file shorter than header + footer",
        });
    }
    let mut header = [0u8; HEADER_LEN];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut header)?;
    if header.get(..8) != Some(&MAGIC[..]) {
        return Err(ColumnarError::Corrupt {
            what: "bad file magic",
        });
    }
    let header_schema = read_u8(&header, 8)?;
    let header_version = read_u8(&header, 9)?;

    let footer_start = len - FOOTER_LEN;
    let mut footer = [0u8; FOOTER_LEN];
    file.seek(SeekFrom::Start(footer_start as u64))?;
    file.read_exact(&mut footer)?;
    if footer.get(FOOTER_LEN - 8..) != Some(&FOOTER_MAGIC[..]) {
        return Err(ColumnarError::Corrupt {
            what: "bad footer magic",
        });
    }
    let rows_raw = read_u64(&footer, 0)?;
    let mut at = 8;
    let mut col_offsets_raw = [0u64; MAX_COLS];
    for slot in &mut col_offsets_raw {
        *slot = read_u64(&footer, at)?;
        at += 8;
    }
    let dict_off_raw = read_u64(&footer, at)?;
    at += 8;
    let zone = ZoneMap {
        min_timestamp: read_u64(&footer, at)?,
        max_timestamp: read_u64(&footer, at + 8)?,
        publisher_mask: read_u64(&footer, at + 16)?,
        status_mask: read_u64(&footer, at + 24)?,
    };
    at += 32;
    let footer_schema = read_u8(&footer, at)?;
    let footer_version = read_u8(&footer, at + 1)?;

    if header_version < MIN_VERSION || header_version > VERSION {
        return Err(ColumnarError::UnsupportedVersion {
            version: header_version,
        });
    }
    if footer_version != header_version {
        return Err(ColumnarError::Corrupt {
            what: "footer version disagrees with header",
        });
    }
    let schema = Schema::from_code(header_schema).ok_or(ColumnarError::UnknownSchema {
        code: header_schema,
    })?;
    if footer_schema != header_schema {
        return Err(ColumnarError::Corrupt {
            what: "footer schema disagrees with header",
        });
    }
    // On v2 shards, read the checksum block and verify the footer
    // checksum right away — it is the only full-coverage check this O(1)
    // reader can afford (columns are never read whole here).
    let (body_end, checksums) = if header_version >= 2 {
        if header
            .get(10..HEADER_LEN)
            .is_some_and(|pad| pad.iter().any(|&b| b != 0))
        {
            return Err(ColumnarError::Corrupt {
                what: "header padding is non-zero",
            });
        }
        let block_start = footer_start
            .checked_sub(CHECKSUM_BLOCK_LEN)
            .filter(|&e| e >= HEADER_LEN)
            .ok_or(ColumnarError::Corrupt {
                what: "file shorter than header + checksum block + footer",
            })?;
        let mut block = [0u8; CHECKSUM_BLOCK_LEN];
        file.seek(SeekFrom::Start(block_start as u64))?;
        file.read_exact(&mut block)?;
        let mut cols = [0u64; MAX_COLS];
        let mut block_at = 0;
        for slot in &mut cols {
            *slot = read_u64(&block, block_at)?;
            block_at += 8;
        }
        let dict_sum = read_u64(&block, block_at)?;
        let footer_sum = read_u64(&block, block_at + 8)?;
        if fnv1a64(&footer) != footer_sum {
            return Err(ColumnarError::Corrupt {
                what: "footer checksum mismatch",
            });
        }
        (
            block_start,
            Some(ShardChecksums {
                cols,
                dict: dict_sum,
                footer: footer_sum,
            }),
        )
    } else {
        (footer_start, None)
    };

    let rows = usize::try_from(rows_raw).map_err(|_| ColumnarError::Corrupt {
        what: "row count exceeds usize",
    })?;
    let dict_off = usize::try_from(dict_off_raw).map_err(|_| ColumnarError::Corrupt {
        what: "dictionary offset exceeds usize",
    })?;
    if dict_off < HEADER_LEN || dict_off > body_end {
        return Err(ColumnarError::Corrupt {
            what: "dictionary offset out of bounds",
        });
    }

    let widths = schema.widths();
    let mut col_offsets = [0usize; MAX_COLS];
    let mut prev_end = HEADER_LEN;
    for (i, &width) in widths.iter().enumerate() {
        let off_raw = col_offsets_raw.get(i).copied().unwrap_or(0);
        let off = usize::try_from(off_raw).map_err(|_| ColumnarError::Corrupt {
            what: "column offset exceeds usize",
        })?;
        if off % 8 != 0 || off < prev_end {
            return Err(ColumnarError::Corrupt {
                what: "column offset misordered or misaligned",
            });
        }
        let col_len = rows.checked_mul(width).ok_or(ColumnarError::Corrupt {
            what: "column length overflows",
        })?;
        let end = off.checked_add(col_len).ok_or(ColumnarError::Corrupt {
            what: "column extent overflows",
        })?;
        if end > dict_off {
            return Err(ColumnarError::Corrupt {
                what: "column extends past the dictionary",
            });
        }
        if let Some(slot) = col_offsets.get_mut(i) {
            *slot = off;
        }
        prev_end = end;
    }
    if col_offsets_raw
        .get(widths.len()..)
        .is_some_and(|rest| rest.iter().any(|&o| o != 0))
    {
        return Err(ColumnarError::Corrupt {
            what: "unused column-offset slots are non-zero",
        });
    }

    Ok(FileMeta {
        rows,
        schema,
        zone,
        col_offsets,
        dict_off,
        body_end,
        version: header_version,
        checksums,
    })
}

/// Reads only the header and footer of the shard at `path`.
///
/// # Errors
///
/// [`ColumnarError::Io`] on I/O failure; [`ColumnarError::Corrupt`],
/// [`ColumnarError::UnsupportedVersion`] or [`ColumnarError::UnknownSchema`]
/// when the header/footer pair is not structurally valid.
pub fn read_shard_footer(path: &Path) -> Result<ShardFooter, ColumnarError> {
    let mut file = File::open(path)?;
    let meta = read_file_meta(&mut file)?;
    Ok(ShardFooter {
        rows: meta.rows as u64,
        schema: meta.schema,
        zone: meta.zone,
        version: meta.version,
        checksums: meta.checksums,
    })
}

/// A bounded-memory reader over one shard file using positioned file reads
/// instead of `mmap`.
///
/// An external k-way merge holds one of these per input run. Unlike
/// [`ColumnarShard::open`], opening costs `O(1)` (header + footer only),
/// and resident memory stays at one decode window plus the user-agent
/// dictionary no matter how large the file is — pages touched through
/// dozens of concurrently mmap'd inputs would otherwise all count against
/// the merge's peak-RSS budget.
#[derive(Debug)]
pub struct ShardFileReader<T: ColumnarRow> {
    file: File,
    meta: FileMeta,
    dict: Option<Vec<String>>,
    _row: PhantomData<fn() -> T>,
}

impl<T: ColumnarRow> ShardFileReader<T> {
    /// Opens the shard at `path`, validating header and footer only.
    ///
    /// # Errors
    ///
    /// As [`read_shard_footer`], plus [`ColumnarError::SchemaMismatch`]
    /// when the shard stores a different row type than `T`.
    pub fn open(path: &Path) -> Result<ShardFileReader<T>, ColumnarError> {
        let mut file = File::open(path)?;
        let meta = read_file_meta(&mut file)?;
        if meta.schema != T::SCHEMA {
            return Err(ColumnarError::SchemaMismatch {
                expected: T::SCHEMA,
                found: meta.schema,
            });
        }
        Ok(ShardFileReader {
            file,
            meta,
            dict: None,
            _row: PhantomData,
        })
    }

    /// Rows stored in the shard.
    pub fn rows(&self) -> usize {
        self.meta.rows
    }

    /// The shard's zone map.
    pub fn zone(&self) -> &ZoneMap {
        &self.meta.zone
    }

    fn read_at(&mut self, off: usize, buf: &mut [u8]) -> Result<(), ColumnarError> {
        use std::io::{Seek, SeekFrom};
        self.file.seek(SeekFrom::Start(off as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    /// Byte offset and width of cell `(col, row)`, bounds-checked against
    /// the footer metadata.
    fn cell(&self, col: usize, row: usize) -> Result<(usize, usize), ColumnarError> {
        let width = T::SCHEMA
            .widths()
            .get(col)
            .copied()
            .ok_or(ColumnarError::Corrupt {
                what: "column index out of range",
            })?;
        if row >= self.meta.rows {
            return Err(ColumnarError::Corrupt {
                what: "row index out of range",
            });
        }
        let off = self.meta.col_offsets.get(col).copied().unwrap_or(0);
        Ok((off + row * width, width))
    }

    fn u64_cell(&mut self, col: usize, row: usize) -> Result<u64, ColumnarError> {
        let (off, width) = self.cell(col, row)?;
        if width != 8 {
            return Err(ColumnarError::Corrupt {
                what: "column is not 8 bytes wide",
            });
        }
        let mut buf = [0u8; 8];
        self.read_at(off, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// The timestamp of row `i` — one positioned 8-byte read.
    ///
    /// # Errors
    ///
    /// [`ColumnarError::Io`] or [`ColumnarError::Corrupt`] when `i` is out
    /// of range.
    pub fn timestamp_at(&mut self, i: usize) -> Result<u64, ColumnarError> {
        self.u64_cell(0, i)
    }

    /// The `(timestamp, user, object)` merge key of row `i` — three
    /// positioned 8-byte reads.
    ///
    /// # Errors
    ///
    /// As [`ShardFileReader::timestamp_at`].
    pub fn key_at(&mut self, i: usize) -> Result<(u64, u64, u64), ColumnarError> {
        let user_col = match T::SCHEMA {
            Schema::Record => 4,
            Schema::Request => 5,
        };
        Ok((
            self.u64_cell(0, i)?,
            self.u64_cell(user_col, i)?,
            self.u64_cell(1, i)?,
        ))
    }

    /// The number of rows whose timestamp is `< t`, by binary search over
    /// the timestamp column. The shard must be time-sorted (generator run
    /// files are).
    ///
    /// # Errors
    ///
    /// As [`ShardFileReader::timestamp_at`].
    pub fn partition_point_lt(&mut self, t: u64) -> Result<usize, ColumnarError> {
        let (mut lo, mut hi) = (0usize, self.meta.rows);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.timestamp_at(mid)? < t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    fn dict(&mut self) -> Result<&[String], ColumnarError> {
        if self.dict.is_none() {
            let len = self.meta.body_end - self.meta.dict_off;
            let mut buf = vec![0u8; len];
            let off = self.meta.dict_off;
            self.read_at(off, &mut buf)?;
            if let Some(checksums) = &self.meta.checksums {
                if fnv1a64(&buf) != checksums.dict {
                    return Err(ColumnarError::Corrupt {
                        what: "dictionary checksum mismatch",
                    });
                }
            }
            self.dict = Some(parse_dict(&buf, 0, len)?);
        }
        self.dict.as_deref().ok_or(ColumnarError::Corrupt {
            what: "dictionary unavailable",
        })
    }

    /// Materializes rows `range` (clamped to the shard) into `out`,
    /// appending. Only the window's column bytes are read; peak memory is
    /// `O(window)` regardless of shard size.
    ///
    /// # Errors
    ///
    /// As [`ColumnarShard::open`] — the window is decoded through the same
    /// row reader, including dictionary-index validation.
    pub fn read_window(
        &mut self,
        range: Range<usize>,
        out: &mut Vec<T>,
    ) -> Result<(), ColumnarError> {
        let lo = range.start.min(self.meta.rows);
        let hi = range.end.min(self.meta.rows);
        if lo >= hi {
            return Ok(());
        }
        let n = hi - lo;
        let widths = T::SCHEMA.widths();
        // Lay the window out as an in-memory mini shard so the ordinary row
        // decoder applies unchanged.
        let mut col_offsets = [0usize; MAX_COLS];
        let mut total = HEADER_LEN;
        for (i, &width) in widths.iter().enumerate() {
            total += (8 - total % 8) % 8;
            if let Some(slot) = col_offsets.get_mut(i) {
                *slot = total;
            }
            total += n * width;
        }
        let mut buf = vec![0u8; total];
        for (i, &width) in widths.iter().enumerate() {
            let (src, _) = self.cell(i, lo)?;
            let dst = col_offsets.get(i).copied().unwrap_or(0);
            let slice = buf
                .get_mut(dst..dst + n * width)
                .ok_or(ColumnarError::Corrupt {
                    what: "window buffer out of range",
                })?;
            self.read_at(src, slice)?;
        }
        let dict = self.dict()?.to_vec();
        let window = ColumnarShard {
            bytes: ShardBytes::copy_from(&buf),
            rows: n,
            schema: T::SCHEMA,
            col_offsets,
            dict,
            zone: self.meta.zone,
        };
        out.reserve(n);
        for i in 0..n {
            out.push(T::read_row(&window, i)?);
        }
        Ok(())
    }
}

impl ShardBytes {
    /// Copies `data` into an owned 8-byte-aligned buffer.
    fn copy_from(data: &[u8]) -> ShardBytes {
        let mut buf = vec![0u64; data.len().div_ceil(8)];
        for (slot, chunk) in buf.iter_mut().zip(data.chunks(8)) {
            let mut a = [0u8; 8];
            if let Some(dst) = a.get_mut(..chunk.len()) {
                dst.copy_from_slice(chunk);
            }
            // Native-endian: the u64's in-memory bytes equal `a` exactly, so
            // `as_slice` reproduces `data` byte for byte on any endianness.
            *slot = u64::from_ne_bytes(a);
        }
        ShardBytes {
            repr: Repr::Owned {
                buf,
                len: data.len(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("oat-columnar-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<LogRecord> {
        (0..10u64)
            .map(|i| {
                let mut r = LogRecord::example();
                r.timestamp += i * 60;
                r.publisher = PublisherId::new((i % 3) as u16);
                r.user_agent = format!("agent-{}", i % 4);
                r.retries = i as u8;
                r
            })
            .collect()
    }

    #[test]
    fn record_roundtrip() {
        let dir = tmpdir("rec-rt");
        let path = dir.join("s.col");
        let records = sample_records();
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&records).unwrap();
        assert_eq!(b.rows(), records.len());
        b.write_file(&path).unwrap();

        let shard = ColumnarShard::open(&path).unwrap();
        assert_eq!(shard.rows(), records.len());
        assert_eq!(shard.schema(), Schema::Record);
        let mut out: Vec<LogRecord> = Vec::new();
        shard.read_rows(0..shard.rows(), &mut out).unwrap();
        assert_eq!(out, records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn request_roundtrip_all_kinds() {
        let dir = tmpdir("req-rt");
        let path = dir.join("s.col");
        let kinds = [
            RequestKind::Full,
            RequestKind::Range {
                offset: 4_000_000,
                length: 2_000_000,
            },
            RequestKind::Conditional,
            RequestKind::InvalidRange,
            RequestKind::Hotlink,
            RequestKind::Beacon,
        ];
        let requests: Vec<Request> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                let mut r = Request::example();
                r.timestamp += i as u64;
                r.incognito = i % 2 == 0;
                r.kind = kind;
                r
            })
            .collect();
        let mut b = ColumnBuilder::<Request>::new();
        b.push_batch(&requests).unwrap();
        b.write_file(&path).unwrap();

        let shard = ColumnarShard::open_expecting(&path, Schema::Request).unwrap();
        let mut out: Vec<Request> = Vec::new();
        shard.read_rows(0..shard.rows(), &mut out).unwrap();
        assert_eq!(out, requests);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn schema_mismatch_is_detected() {
        let dir = tmpdir("mismatch");
        let path = dir.join("s.col");
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push(&LogRecord::example()).unwrap();
        b.write_file(&path).unwrap();

        assert!(matches!(
            ColumnarShard::open_expecting(&path, Schema::Request),
            Err(ColumnarError::SchemaMismatch { .. })
        ));
        let shard = ColumnarShard::open(&path).unwrap();
        let mut out: Vec<Request> = Vec::new();
        assert!(matches!(
            shard.read_rows(0..1, &mut out),
            Err(ColumnarError::SchemaMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zone_map_tracks_rows() {
        let mut b = ColumnBuilder::<LogRecord>::new();
        for r in sample_records() {
            b.push(&r).unwrap();
        }
        let zone = b.zone();
        let base = LogRecord::example().timestamp;
        assert_eq!(zone.min_timestamp, base);
        assert_eq!(zone.max_timestamp, base + 9 * 60);
        for p in 0..3u16 {
            assert_ne!(zone.publisher_mask & (1 << p), 0);
        }
        // All samples are 206 → only class 2 set.
        assert_eq!(zone.status_mask, 1 << 2);
    }

    #[test]
    fn zone_pruning_is_conservative() {
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&sample_records()).unwrap();
        let zone = *b.zone();
        let base = LogRecord::example().timestamp;

        assert!(zone.may_match(&ShardFilter::all()));
        assert!(zone.may_match(&ShardFilter::all().with_time(base..base + 1)));
        assert!(!zone.may_match(&ShardFilter::all().with_time(0..base)));
        assert!(!zone.may_match(&ShardFilter::all().with_time(base + 10 * 60..base + 20 * 60)));
        assert!(zone.may_match(&ShardFilter::all().with_publishers(vec![PublisherId::new(1)])));
        assert!(!zone.may_match(&ShardFilter::all().with_publishers(vec![PublisherId::new(7)])));
        assert!(zone.may_match(&ShardFilter::all().with_status_classes(vec![2])));
        assert!(!zone.may_match(&ShardFilter::all().with_status_classes(vec![5])));
    }

    #[test]
    fn request_shards_never_prune_on_status() {
        let mut b = ColumnBuilder::<Request>::new();
        b.push(&Request::example()).unwrap();
        assert!(b
            .zone()
            .may_match(&ShardFilter::all().with_status_classes(vec![5])));
    }

    #[test]
    fn filtered_read_equals_full_scan_plus_filter() {
        let dir = tmpdir("filter");
        let path = dir.join("s.col");
        let records = sample_records();
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&records).unwrap();
        b.write_file(&path).unwrap();
        let shard = ColumnarShard::open(&path).unwrap();

        let base = LogRecord::example().timestamp;
        let filter = ShardFilter::all()
            .with_time(base + 60..base + 8 * 60)
            .with_publishers(vec![PublisherId::new(1), PublisherId::new(2)]);
        let mut fast: Vec<LogRecord> = Vec::new();
        shard
            .read_matching(&filter, 0..shard.rows(), &mut fast)
            .unwrap();
        let slow: Vec<LogRecord> = records
            .iter()
            .filter(|r| filter.matches(*r))
            .cloned()
            .collect();
        assert_eq!(fast, slow);
        assert!(!fast.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_shard_roundtrips() {
        let dir = tmpdir("empty");
        let path = dir.join("s.col");
        let b = ColumnBuilder::<LogRecord>::new();
        b.write_file(&path).unwrap();
        let shard = ColumnarShard::open(&path).unwrap();
        assert_eq!(shard.rows(), 0);
        assert_eq!(*shard.zone(), ZoneMap::empty());
        let mut out: Vec<LogRecord> = Vec::new();
        shard.read_rows(0..10, &mut out).unwrap();
        assert!(out.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_and_corrupt_shards_are_rejected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("s.col");
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&sample_records()).unwrap();
        b.write_file(&path).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Truncations at every interesting boundary.
        for cut in [0, 4, HEADER_LEN, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = ColumnarShard::open(&path).unwrap_err();
            assert!(err.is_data_error(), "cut at {cut}: {err}");
        }

        // Bad leading magic.
        let mut bad = full.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            ColumnarShard::open(&path),
            Err(ColumnarError::Corrupt { .. })
        ));

        // Unsupported version.
        let mut bad = full.clone();
        bad[9] = 99;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            ColumnarShard::open(&path),
            Err(ColumnarError::UnsupportedVersion { version: 99 })
        ));

        // Unknown schema code.
        let mut bad = full.clone();
        bad[8] = 7;
        let footer_schema_at = full.len() - FOOTER_LEN + 8 + 8 * MAX_COLS + 8 + 32;
        bad[footer_schema_at] = 7;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            ColumnarShard::open(&path),
            Err(ColumnarError::UnknownSchema { code: 7 })
        ));

        // Status column corrupted: v2 checksums catch it at open, before
        // any row is decoded.
        std::fs::write(&path, &full).unwrap();
        let shard = ColumnarShard::open(&path).unwrap();
        let status_off = shard.col_offsets[6];
        drop(shard);
        let mut bad = full.clone();
        bad[status_off] = 0xFF;
        bad[status_off + 1] = 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            ColumnarShard::open(&path),
            Err(ColumnarError::Corrupt {
                what: "column checksum mismatch"
            })
        ));

        // On a legacy v1 shard (no checksums) the same corruption is only
        // caught when the row is materialized.
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&sample_records()).unwrap();
        b.write_file_version(&path, 1).unwrap();
        let full_v1 = std::fs::read(&path).unwrap();
        let shard = ColumnarShard::open(&path).unwrap();
        let status_off = shard.col_offsets[6];
        drop(shard);
        let mut bad = full_v1.clone();
        bad[status_off] = 0xFF;
        bad[status_off + 1] = 0xFF;
        std::fs::write(&path, &bad).unwrap();
        let shard = ColumnarShard::open(&path).unwrap();
        let mut out: Vec<LogRecord> = Vec::new();
        assert!(matches!(
            shard.read_rows(0..shard.rows(), &mut out),
            Err(ColumnarError::InvalidValue {
                field: "status",
                ..
            })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_v1_shards_still_decode() {
        let dir = tmpdir("v1-compat");
        let path = dir.join("s.col");
        let records = sample_records();
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&records).unwrap();
        b.write_file_version(&path, 1).unwrap();

        // Byte 9 really is the legacy version tag.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[9], 1);

        // Full mmap reader.
        let shard = ColumnarShard::open(&path).unwrap();
        let mut out: Vec<LogRecord> = Vec::new();
        shard.read_rows(0..shard.rows(), &mut out).unwrap();
        assert_eq!(out, records);

        // O(1) footer reader reports the version and no checksums.
        let footer = read_shard_footer(&path).unwrap();
        assert_eq!(footer.version, 1);
        assert!(footer.checksums.is_none());
        assert_eq!(footer.rows, records.len() as u64);

        // Bounded-memory window reader.
        let mut reader = ShardFileReader::<LogRecord>::open(&path).unwrap();
        let mut windowed: Vec<LogRecord> = Vec::new();
        reader.read_window(0..records.len(), &mut windowed).unwrap();
        assert_eq!(windowed, records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn current_shards_carry_checksums() {
        let dir = tmpdir("v2-footer");
        let path = dir.join("s.col");
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&sample_records()).unwrap();
        b.write_file(&path).unwrap();

        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[9], VERSION);
        let footer = read_shard_footer(&path).unwrap();
        assert_eq!(footer.version, VERSION);
        let checksums = footer.checksums.expect("v2 shard has checksums");
        // Spot-check: the dictionary checksum matches a recomputation.
        let body_end = bytes.len() - FOOTER_LEN - CHECKSUM_BLOCK_LEN;
        let shard = ColumnarShard::open(&path).unwrap();
        let dict_off = {
            // The dictionary follows the last column.
            let widths = Schema::Record.widths();
            let last = widths.len() - 1;
            shard.col_offsets[last] + shard.rows() * widths[last]
        };
        assert_eq!(
            crate::durable::fnv1a64(&bytes[dict_off..body_end]),
            checksums.dict
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_flip_any_byte_is_rejected() {
        // The acceptance property for checksum coverage: flipping ANY
        // single byte of a checksummed shard must make open() fail with a
        // data error — no flipped shard may be decoded as valid rows.
        let dir = tmpdir("flip-any");
        let path = dir.join("s.col");
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&sample_records()).unwrap();
        b.write_file(&path).unwrap();
        let full = std::fs::read(&path).unwrap();

        for i in 0..full.len() {
            let mut bad = full.clone();
            bad[i] ^= 0xFF;
            std::fs::write(&path, &bad).unwrap();
            match ColumnarShard::open(&path) {
                Err(e) => assert!(e.is_data_error(), "flip at byte {i}: {e}"),
                Ok(_) => panic!("flip at byte {i} was not detected"),
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_copy_views_match_rows() {
        let dir = tmpdir("views");
        let path = dir.join("s.col");
        let records = sample_records();
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&records).unwrap();
        b.write_file(&path).unwrap();
        let shard = ColumnarShard::open(&path).unwrap();

        #[cfg(target_endian = "little")]
        {
            let ts: Vec<u64> = records.iter().map(|r| r.timestamp).collect();
            assert_eq!(shard.timestamps().unwrap(), &ts[..]);
            let pubs: Vec<u16> = records.iter().map(|r| r.publisher.raw()).collect();
            assert_eq!(shard.publishers().unwrap(), &pubs[..]);
            let statuses: Vec<u16> = records.iter().map(|r| r.status.code()).collect();
            assert_eq!(shard.statuses().unwrap(), &statuses[..]);
            let objects: Vec<u64> = records.iter().map(|r| r.object.raw()).collect();
            assert_eq!(shard.objects().unwrap(), &objects[..]);
            let sizes: Vec<u64> = records.iter().map(|r| r.object_size).collect();
            assert_eq!(shard.object_sizes().unwrap(), &sizes[..]);
            let users: Vec<u64> = records.iter().map(|r| r.user.raw()).collect();
            assert_eq!(shard.users().unwrap(), &users[..]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dictionary_deduplicates_user_agents() {
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&sample_records()).unwrap();
        // 10 rows but only 4 distinct agents.
        let dir = tmpdir("dict");
        let path = dir.join("s.col");
        b.write_file(&path).unwrap();
        let shard = ColumnarShard::open(&path).unwrap();
        assert_eq!(shard.user_agent_dict().len(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn builder_clear_resets_everything() {
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&sample_records()).unwrap();
        assert!(b.rows() > 0 && b.buffered_bytes() > 0);
        b.clear();
        assert_eq!(b.rows(), 0);
        assert_eq!(b.buffered_bytes(), 0);
        assert_eq!(*b.zone(), ZoneMap::empty());
    }

    #[test]
    fn owned_fallback_reads_identically() {
        let dir = tmpdir("owned");
        let path = dir.join("s.col");
        let records = sample_records();
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&records).unwrap();
        b.write_file(&path).unwrap();

        let mut file = File::open(&path).unwrap();
        let len = file.metadata().unwrap().len() as usize;
        let bytes = ShardBytes::read_owned(&mut file, len).unwrap();
        assert!(!bytes.is_mapped());
        let shard = ColumnarShard::parse(bytes).unwrap();
        let mut out: Vec<LogRecord> = Vec::new();
        shard.read_rows(0..shard.rows(), &mut out).unwrap();
        assert_eq!(out, records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shard_footer_matches_full_open() {
        let dir = tmpdir("footer");
        let path = dir.join("s.col");
        let records = sample_records();
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&records).unwrap();
        b.write_file(&path).unwrap();

        let footer = read_shard_footer(&path).unwrap();
        let shard = ColumnarShard::open(&path).unwrap();
        assert_eq!(footer.rows, shard.rows() as u64);
        assert_eq!(footer.schema, Schema::Record);
        assert_eq!(footer.zone, *shard.zone());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shard_footer_rejects_truncation() {
        let dir = tmpdir("footer-bad");
        let path = dir.join("s.col");
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&sample_records()).unwrap();
        b.write_file(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            read_shard_footer(&path),
            Err(ColumnarError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_reader_windows_match_mmap_reader() {
        let dir = tmpdir("filereader");
        let path = dir.join("s.col");
        let records = sample_records();
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&records).unwrap();
        b.write_file(&path).unwrap();

        let mut reader = ShardFileReader::<LogRecord>::open(&path).unwrap();
        assert_eq!(reader.rows(), records.len());
        let shard = ColumnarShard::open(&path).unwrap();
        assert_eq!(*reader.zone(), *shard.zone());

        // Full window and a strict interior window both match read_rows.
        for range in [0..records.len(), 3..7] {
            let mut via_file: Vec<LogRecord> = Vec::new();
            reader.read_window(range.clone(), &mut via_file).unwrap();
            let mut via_mmap: Vec<LogRecord> = Vec::new();
            shard.read_rows(range, &mut via_mmap).unwrap();
            assert_eq!(via_file, via_mmap);
        }
        // Out-of-range windows clamp instead of erroring.
        let mut clamped: Vec<LogRecord> = Vec::new();
        reader.read_window(8..100, &mut clamped).unwrap();
        assert_eq!(clamped.len(), 2);

        // Point reads agree with the materialized rows.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(reader.timestamp_at(i).unwrap(), r.timestamp);
            let (ts, user, object) = reader.key_at(i).unwrap();
            assert_eq!(ts, r.timestamp);
            assert_eq!(user, r.user.raw());
            assert_eq!(object, r.object.raw());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_reader_partition_point() {
        let dir = tmpdir("filereader-pp");
        let path = dir.join("s.col");
        let records = sample_records(); // timestamps ascend by 60
        let first_ts = records[0].timestamp;
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&records).unwrap();
        b.write_file(&path).unwrap();

        let mut reader = ShardFileReader::<LogRecord>::open(&path).unwrap();
        assert_eq!(reader.partition_point_lt(0).unwrap(), 0);
        assert_eq!(reader.partition_point_lt(first_ts).unwrap(), 0);
        assert_eq!(reader.partition_point_lt(first_ts + 1).unwrap(), 1);
        assert_eq!(reader.partition_point_lt(first_ts + 60).unwrap(), 1);
        assert_eq!(reader.partition_point_lt(u64::MAX).unwrap(), records.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_reader_rejects_wrong_schema() {
        let dir = tmpdir("filereader-schema");
        let path = dir.join("s.col");
        let mut b = ColumnBuilder::<LogRecord>::new();
        b.push_batch(&sample_records()).unwrap();
        b.write_file(&path).unwrap();
        assert!(matches!(
            ShardFileReader::<Request>::open(&path),
            Err(ColumnarError::SchemaMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
