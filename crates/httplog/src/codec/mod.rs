//! Log-record codecs.
//!
//! Three wire formats are provided:
//!
//! * [`text`] — a tab-separated, human-greppable format, one record per
//!   line, mirroring classic CDN access-log dumps.
//! * [`binary`] — a compact length-prefixed binary format (~4–6× smaller,
//!   ~10× faster to parse), for large synthetic traces.
//! * [`columnar`] — a struct-of-arrays shard format with per-shard zone
//!   maps and mmap zero-copy reads, for out-of-core multi-pass analysis.
//!
//! All codecs round-trip every [`LogRecord`](crate::LogRecord) exactly;
//! the property tests enforce this. The row codecs remain conversion
//! targets for columnar data (see [`crate::io`]).

pub mod binary;
pub mod columnar;
pub mod text;
