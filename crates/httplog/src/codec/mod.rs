//! Log-record codecs.
//!
//! Two wire formats are provided:
//!
//! * [`text`] — a tab-separated, human-greppable format, one record per
//!   line, mirroring classic CDN access-log dumps.
//! * [`binary`] — a compact length-prefixed binary format (~4–6× smaller,
//!   ~10× faster to parse), for large synthetic traces.
//!
//! Both codecs round-trip every [`LogRecord`](crate::LogRecord) exactly;
//! the property tests enforce this.

pub mod binary;
pub mod text;
