//! Compact length-prefixed binary codec.
//!
//! Layout (little-endian), one frame per record:
//!
//! ```text
//! u8   version (currently 2)
//! u64  timestamp
//! u16  publisher
//! u64  object
//! u8   format code
//! u64  object_size
//! u64  bytes_served
//! u64  user
//! u8   cache status (0 = MISS, 1 = HIT)
//! u16  http status
//! u16  pop
//! i32  tz_offset_secs
//! u8   degraded-serve code (version ≥ 2)
//! u8   retries (version ≥ 2)
//! u16  user-agent byte length, then that many UTF-8 bytes
//! ```
//!
//! Version 1 frames (no `degraded`/`retries` bytes) still decode; the
//! two fields default to their healthy values.

use crate::content::FileFormat;
use crate::ids::{ObjectId, PopId, PublisherId, UserId};
use crate::record::LogRecord;
use crate::status::{CacheStatus, DegradedServe, HttpStatus};
use bytes::{Buf, BufMut};

/// Current frame version.
pub const VERSION: u8 = 2;

/// Fixed-size portion of a current-version frame (everything but the UA
/// bytes).
const FIXED_LEN: usize = 1 + 8 + 2 + 8 + 1 + 8 + 8 + 8 + 1 + 2 + 2 + 4 + 1 + 1 + 2;

/// Fixed-size portion of a version-1 frame.
const FIXED_LEN_V1: usize = 1 + 8 + 2 + 8 + 1 + 8 + 8 + 8 + 1 + 2 + 2 + 4 + 2;

/// Fixed frame length (including the version byte) for `version`, or
/// `None` for unknown versions. Used by the framed reader in
/// [`crate::io`] to size its header read per version.
pub(crate) fn fixed_len(version: u8) -> Option<usize> {
    match version {
        1 => Some(FIXED_LEN_V1),
        2 => Some(FIXED_LEN),
        _ => None,
    }
}

/// Encodes one record into `buf`.
///
/// # Errors
///
/// Returns [`BinaryEncodeError::UserAgentTooLong`] when the UA exceeds
/// `u16::MAX` bytes.
pub fn encode<B: BufMut>(record: &LogRecord, buf: &mut B) -> Result<(), BinaryEncodeError> {
    let ua = record.user_agent.as_bytes();
    let ua_len = u16::try_from(ua.len())
        .map_err(|_| BinaryEncodeError::UserAgentTooLong { len: ua.len() })?;
    buf.put_u8(VERSION);
    buf.put_u64_le(record.timestamp);
    buf.put_u16_le(record.publisher.raw());
    buf.put_u64_le(record.object.raw());
    buf.put_u8(format_code(record.format));
    buf.put_u64_le(record.object_size);
    buf.put_u64_le(record.bytes_served);
    buf.put_u64_le(record.user.raw());
    buf.put_u8(if record.cache_status.is_hit() { 1 } else { 0 });
    buf.put_u16_le(record.status.code());
    buf.put_u16_le(record.pop.raw());
    buf.put_i32_le(record.tz_offset_secs);
    buf.put_u8(record.degraded.code());
    buf.put_u8(record.retries);
    buf.put_u16_le(ua_len);
    buf.put_slice(ua);
    Ok(())
}

/// Decodes one record from `buf`, advancing it past the frame.
///
/// # Errors
///
/// Returns [`BinaryDecodeError`] on truncation, version mismatch, or invalid
/// field encodings.
pub fn decode<B: Buf>(buf: &mut B) -> Result<LogRecord, BinaryDecodeError> {
    let Some(&version) = buf.chunk().first() else {
        return Err(BinaryDecodeError::Truncated);
    };
    let Some(fixed) = fixed_len(version) else {
        return Err(BinaryDecodeError::UnsupportedVersion { version });
    };
    if buf.remaining() < fixed {
        return Err(BinaryDecodeError::Truncated);
    }
    buf.advance(1);
    let timestamp = buf.get_u64_le();
    let publisher = PublisherId::new(buf.get_u16_le());
    let object = ObjectId::new(buf.get_u64_le());
    let format_raw = buf.get_u8();
    let format = format_from_code(format_raw)
        .ok_or(BinaryDecodeError::InvalidFormat { code: format_raw })?;
    let object_size = buf.get_u64_le();
    let bytes_served = buf.get_u64_le();
    let user = UserId::new(buf.get_u64_le());
    let cache_raw = buf.get_u8();
    let cache_status = match cache_raw {
        0 => CacheStatus::Miss,
        1 => CacheStatus::Hit,
        other => return Err(BinaryDecodeError::InvalidCacheStatus { value: other }),
    };
    let status_raw = buf.get_u16_le();
    let status = HttpStatus::new(status_raw)
        .map_err(|_| BinaryDecodeError::InvalidStatus { code: status_raw })?;
    let pop = PopId::new(buf.get_u16_le());
    let tz_offset_secs = buf.get_i32_le();
    let (degraded, retries) = if version >= 2 {
        let degraded_raw = buf.get_u8();
        let degraded = DegradedServe::from_code(degraded_raw)
            .ok_or(BinaryDecodeError::InvalidDegraded { code: degraded_raw })?;
        (degraded, buf.get_u8())
    } else {
        (DegradedServe::None, 0)
    };
    let ua_len = buf.get_u16_le() as usize;
    if buf.remaining() < ua_len {
        return Err(BinaryDecodeError::Truncated);
    }
    let mut ua_bytes = vec![0u8; ua_len];
    buf.copy_to_slice(&mut ua_bytes);
    let user_agent = String::from_utf8(ua_bytes).map_err(|_| BinaryDecodeError::InvalidUtf8)?;
    Ok(LogRecord {
        timestamp,
        publisher,
        object,
        format,
        object_size,
        bytes_served,
        user,
        user_agent,
        cache_status,
        status,
        pop,
        tz_offset_secs,
        degraded,
        retries,
    })
}

/// Stable wire code for a format (its index in [`FileFormat::ALL`]).
pub fn format_code(format: FileFormat) -> u8 {
    FileFormat::ALL
        .iter()
        .position(|&f| f == format)
        // Every variant appears in ALL; the 0xFF fallback would fail
        // decode loudly rather than panic encode.
        .map_or(u8::MAX, |i| i as u8)
}

/// Inverse of [`format_code`].
pub fn format_from_code(code: u8) -> Option<FileFormat> {
    FileFormat::ALL.get(code as usize).copied()
}

/// Error encoding a binary frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryEncodeError {
    /// The user-agent string exceeds the u16 length prefix.
    UserAgentTooLong {
        /// Actual UA byte length.
        len: usize,
    },
}

impl std::fmt::Display for BinaryEncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UserAgentTooLong { len } => {
                write!(
                    f,
                    "user-agent of {len} bytes exceeds the 65535-byte frame limit"
                )
            }
        }
    }
}

impl std::error::Error for BinaryEncodeError {}

/// Error decoding a binary frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryDecodeError {
    /// The buffer ended mid-frame.
    Truncated,
    /// Unknown frame version byte.
    UnsupportedVersion {
        /// The version byte found.
        version: u8,
    },
    /// Unknown file-format code.
    InvalidFormat {
        /// The code found.
        code: u8,
    },
    /// Cache-status byte was neither 0 nor 1.
    InvalidCacheStatus {
        /// The byte found.
        value: u8,
    },
    /// HTTP status outside `100..=599`.
    InvalidStatus {
        /// The code found.
        code: u16,
    },
    /// Unknown degraded-serve code.
    InvalidDegraded {
        /// The code found.
        code: u8,
    },
    /// The user-agent bytes were not valid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for BinaryDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => f.write_str("frame truncated"),
            Self::UnsupportedVersion { version } => write!(f, "unsupported version {version}"),
            Self::InvalidFormat { code } => write!(f, "invalid format code {code}"),
            Self::InvalidCacheStatus { value } => write!(f, "invalid cache-status byte {value}"),
            Self::InvalidStatus { code } => write!(f, "invalid http status {code}"),
            Self::InvalidDegraded { code } => write!(f, "invalid degraded-serve code {code}"),
            Self::InvalidUtf8 => f.write_str("user-agent is not valid UTF-8"),
        }
    }
}

impl std::error::Error for BinaryDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn roundtrip_example() {
        let r = LogRecord::example();
        let mut buf = BytesMut::new();
        encode(&r, &mut buf).unwrap();
        let mut slice = buf.freeze();
        assert_eq!(decode(&mut slice).unwrap(), r);
        assert!(!slice.has_remaining());
    }

    #[test]
    fn multiple_frames_stream() {
        let mut records = Vec::new();
        for i in 0..10u64 {
            let mut r = LogRecord::example();
            r.timestamp += i;
            r.user_agent = format!("agent-{i}");
            records.push(r);
        }
        let mut buf = BytesMut::new();
        for r in &records {
            encode(r, &mut buf).unwrap();
        }
        let mut slice = buf.freeze();
        for r in &records {
            assert_eq!(&decode(&mut slice).unwrap(), r);
        }
        assert!(!slice.has_remaining());
    }

    #[test]
    fn truncated_fixed_part() {
        let r = LogRecord::example();
        let mut buf = BytesMut::new();
        encode(&r, &mut buf).unwrap();
        let mut short = buf.freeze().slice(0..10);
        assert_eq!(
            decode(&mut short).unwrap_err(),
            BinaryDecodeError::Truncated
        );
    }

    #[test]
    fn truncated_ua() {
        let r = LogRecord::example();
        let mut buf = BytesMut::new();
        encode(&r, &mut buf).unwrap();
        let full = buf.freeze();
        let mut short = full.slice(0..full.len() - 5);
        assert_eq!(
            decode(&mut short).unwrap_err(),
            BinaryDecodeError::Truncated
        );
    }

    #[test]
    fn version_mismatch() {
        let r = LogRecord::example();
        let mut buf = BytesMut::new();
        encode(&r, &mut buf).unwrap();
        let mut bytes = buf.to_vec();
        bytes[0] = 99;
        let mut slice = &bytes[..];
        assert_eq!(
            decode(&mut slice).unwrap_err(),
            BinaryDecodeError::UnsupportedVersion { version: 99 }
        );
    }

    #[test]
    fn invalid_cache_byte() {
        let r = LogRecord::example();
        let mut buf = BytesMut::new();
        encode(&r, &mut buf).unwrap();
        let mut bytes = buf.to_vec();
        // Cache byte offset: 1+8+2+8+1+8+8+8 = 44.
        bytes[44] = 7;
        let mut slice = &bytes[..];
        assert_eq!(
            decode(&mut slice).unwrap_err(),
            BinaryDecodeError::InvalidCacheStatus { value: 7 }
        );
    }

    #[test]
    fn invalid_format_code() {
        let r = LogRecord::example();
        let mut buf = BytesMut::new();
        encode(&r, &mut buf).unwrap();
        let mut bytes = buf.to_vec();
        // Format byte offset: 1+8+2+8 = 19.
        bytes[19] = 200;
        let mut slice = &bytes[..];
        assert_eq!(
            decode(&mut slice).unwrap_err(),
            BinaryDecodeError::InvalidFormat { code: 200 }
        );
    }

    /// Encodes `record` as a version-1 frame (no degraded/retries bytes),
    /// as written by pre-fault-model builds.
    fn encode_v1(record: &LogRecord, buf: &mut BytesMut) {
        let ua = record.user_agent.as_bytes();
        buf.put_u8(1);
        buf.put_u64_le(record.timestamp);
        buf.put_u16_le(record.publisher.raw());
        buf.put_u64_le(record.object.raw());
        buf.put_u8(format_code(record.format));
        buf.put_u64_le(record.object_size);
        buf.put_u64_le(record.bytes_served);
        buf.put_u64_le(record.user.raw());
        buf.put_u8(if record.cache_status.is_hit() { 1 } else { 0 });
        buf.put_u16_le(record.status.code());
        buf.put_u16_le(record.pop.raw());
        buf.put_i32_le(record.tz_offset_secs);
        buf.put_u16_le(ua.len() as u16);
        buf.put_slice(ua);
    }

    #[test]
    fn roundtrip_degraded_fields() {
        let mut r = LogRecord::example();
        r.degraded = DegradedServe::Failover;
        r.retries = 2;
        let mut buf = BytesMut::new();
        encode(&r, &mut buf).unwrap();
        let mut slice = buf.freeze();
        assert_eq!(decode(&mut slice).unwrap(), r);
        assert!(!slice.has_remaining());
    }

    #[test]
    fn version_1_frames_decode_with_healthy_defaults() {
        let r = LogRecord::example();
        let mut buf = BytesMut::new();
        encode_v1(&r, &mut buf);
        let mut slice = buf.freeze();
        let decoded = decode(&mut slice).unwrap();
        assert_eq!(decoded.degraded, DegradedServe::None);
        assert_eq!(decoded.retries, 0);
        assert_eq!(decoded, r);
        assert!(!slice.has_remaining());
    }

    #[test]
    fn truncated_version_1_fixed_part() {
        let r = LogRecord::example();
        let mut buf = BytesMut::new();
        encode_v1(&r, &mut buf);
        let mut short = buf.freeze().slice(0..FIXED_LEN_V1 - 1);
        assert_eq!(
            decode(&mut short).unwrap_err(),
            BinaryDecodeError::Truncated
        );
    }

    #[test]
    fn invalid_degraded_code() {
        let r = LogRecord::example();
        let mut buf = BytesMut::new();
        encode(&r, &mut buf).unwrap();
        let mut bytes = buf.to_vec();
        // Degraded byte offset: 1+8+2+8+1+8+8+8+1+2+2+4 = 53.
        bytes[53] = 200;
        let mut slice = &bytes[..];
        assert_eq!(
            decode(&mut slice).unwrap_err(),
            BinaryDecodeError::InvalidDegraded { code: 200 }
        );
    }

    #[test]
    fn ua_too_long() {
        let mut r = LogRecord::example();
        r.user_agent = "x".repeat(70_000);
        let mut buf = BytesMut::new();
        assert_eq!(
            encode(&r, &mut buf).unwrap_err(),
            BinaryEncodeError::UserAgentTooLong { len: 70_000 }
        );
    }

    #[test]
    fn format_codes_are_stable_and_total() {
        for f in FileFormat::ALL {
            assert_eq!(format_from_code(format_code(f)), Some(f));
        }
        assert_eq!(format_from_code(255), None);
        // Stability anchor: Flv is code 0, Bin is the last code.
        assert_eq!(format_code(FileFormat::Flv), 0);
        assert_eq!(
            format_code(FileFormat::Bin),
            FileFormat::ALL.len() as u8 - 1
        );
    }

    #[test]
    fn binary_smaller_than_text() {
        let r = LogRecord::example();
        let mut buf = BytesMut::new();
        encode(&r, &mut buf).unwrap();
        let text = crate::codec::text::encode(&r);
        assert!(buf.len() < text.len());
    }
}
