//! Tab-separated text codec.
//!
//! One record per line, 14 tab-separated fields:
//!
//! ```text
//! timestamp  publisher  object(hex)  format  object_size  bytes_served
//! user(hex)  user_agent(escaped)  cache  status  pop  tz_offset
//! degraded  retries
//! ```
//!
//! The user-agent field escapes backslash, tab, newline and carriage return
//! so a record always occupies exactly one line.
//!
//! The trailing `degraded`/`retries` fields were added with the fault
//! model; 12-field lines from earlier writers still decode (the two
//! fields default to `-`/`0`).

use crate::content::FileFormat;
use crate::ids::{ObjectId, PopId, PublisherId, UserId};
use crate::record::LogRecord;
use crate::status::{CacheStatus, DegradedServe, HttpStatus};

const FIELD_COUNT: usize = 14;

/// Encodes a record as a single line (no trailing newline).
///
/// # Example
///
/// ```
/// use oat_httplog::codec::text;
/// use oat_httplog::LogRecord;
///
/// let line = text::encode(&LogRecord::example());
/// assert_eq!(line.split('\t').count(), 14);
/// ```
pub fn encode(record: &LogRecord) -> String {
    let mut out = String::with_capacity(96 + record.user_agent.len());
    encode_into(record, &mut out);
    out
}

/// Encodes a record, appending to `out` (no trailing newline).
pub fn encode_into(record: &LogRecord, out: &mut String) {
    use std::fmt::Write as _;
    // `fmt::Write` for `String` is infallible, so the results are discarded
    // rather than unwrapped.
    let _ = write!(
        out,
        "{}\t{}\t{:016x}\t{}\t{}\t{}\t{:016x}\t",
        record.timestamp,
        record.publisher.raw(),
        record.object.raw(),
        record.format.extension(),
        record.object_size,
        record.bytes_served,
        record.user.raw(),
    );
    escape_into(&record.user_agent, out);
    let _ = write!(
        out,
        "\t{}\t{}\t{}\t{}\t{}\t{}",
        record.cache_status.as_str(),
        record.status.code(),
        record.pop.raw(),
        record.tz_offset_secs,
        record.degraded.as_str(),
        record.retries,
    );
}

/// Decodes one line (without trailing newline).
///
/// # Errors
///
/// Returns [`TextDecodeError`] describing the first malformed field.
pub fn decode(line: &str) -> Result<LogRecord, TextDecodeError> {
    let mut fields = line.split('\t');
    let mut next = |name: &'static str| {
        fields
            .next()
            .ok_or(TextDecodeError::MissingField { field: name })
    };

    let timestamp = parse_u64(next("timestamp")?, "timestamp")?;
    let publisher = PublisherId::new(parse_u16(next("publisher")?, "publisher")?);
    let object = ObjectId::new(parse_hex64(next("object")?, "object")?);
    let format = FileFormat::from_extension(next("format")?);
    let object_size = parse_u64(next("object_size")?, "object_size")?;
    let bytes_served = parse_u64(next("bytes_served")?, "bytes_served")?;
    let user = UserId::new(parse_hex64(next("user")?, "user")?);
    let user_agent = unescape(next("user_agent")?);
    let cache_token = next("cache_status")?;
    let cache_status =
        CacheStatus::from_str_token(cache_token).ok_or_else(|| TextDecodeError::InvalidField {
            field: "cache_status",
            value: cache_token.to_string(),
        })?;
    let status_raw = parse_u16(next("status")?, "status")?;
    let status = HttpStatus::new(status_raw).map_err(|_| TextDecodeError::InvalidField {
        field: "status",
        value: status_raw.to_string(),
    })?;
    let pop = PopId::new(parse_u16(next("pop")?, "pop")?);
    let tz_field = next("tz_offset")?;
    let tz_offset_secs = tz_field
        .parse::<i32>()
        .map_err(|_| TextDecodeError::InvalidField {
            field: "tz_offset",
            value: tz_field.to_string(),
        })?;

    // Trailing fault-model fields: absent on 12-field lines from earlier
    // writers, in which case both default to their healthy values.
    let degraded = match fields.next() {
        None => DegradedServe::None,
        Some(token) => {
            DegradedServe::from_str_token(token).ok_or_else(|| TextDecodeError::InvalidField {
                field: "degraded",
                value: token.to_string(),
            })?
        }
    };
    let retries = match fields.next() {
        None => 0,
        Some(raw) => raw
            .parse::<u8>()
            .map_err(|_| TextDecodeError::InvalidField {
                field: "retries",
                value: raw.to_string(),
            })?,
    };

    if fields.next().is_some() {
        return Err(TextDecodeError::TooManyFields {
            expected: FIELD_COUNT,
        });
    }

    Ok(LogRecord {
        timestamp,
        publisher,
        object,
        format,
        object_size,
        bytes_served,
        user,
        user_agent,
        cache_status,
        status,
        pop,
        tz_offset_secs,
        degraded,
        retries,
    })
}

fn parse_u64(s: &str, field: &'static str) -> Result<u64, TextDecodeError> {
    s.parse().map_err(|_| TextDecodeError::InvalidField {
        field,
        value: s.to_string(),
    })
}

fn parse_u16(s: &str, field: &'static str) -> Result<u16, TextDecodeError> {
    s.parse().map_err(|_| TextDecodeError::InvalidField {
        field,
        value: s.to_string(),
    })
}

fn parse_hex64(s: &str, field: &'static str) -> Result<u64, TextDecodeError> {
    u64::from_str_radix(s, 16).map_err(|_| TextDecodeError::InvalidField {
        field,
        value: s.to_string(),
    })
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                // Unknown escape: preserve verbatim.
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Error decoding a text-format line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextDecodeError {
    /// The line ended before this field.
    MissingField {
        /// Name of the missing field.
        field: &'static str,
    },
    /// A field failed to parse.
    InvalidField {
        /// Name of the malformed field.
        field: &'static str,
        /// The offending raw value.
        value: String,
    },
    /// The line had more fields than the format defines.
    TooManyFields {
        /// The expected field count.
        expected: usize,
    },
}

impl std::fmt::Display for TextDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingField { field } => write!(f, "missing field `{field}`"),
            Self::InvalidField { field, value } => {
                write!(f, "invalid value {value:?} for field `{field}`")
            }
            Self::TooManyFields { expected } => {
                write!(f, "more than {expected} fields on line")
            }
        }
    }
}

impl std::error::Error for TextDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_example() {
        let r = LogRecord::example();
        let line = encode(&r);
        assert_eq!(decode(&line).unwrap(), r);
    }

    #[test]
    fn roundtrip_special_characters_in_ua() {
        let mut r = LogRecord::example();
        r.user_agent = "weird\tagent\\with\nnewlines\rand tabs".to_string();
        let line = encode(&r);
        assert!(!line.contains('\n'));
        assert_eq!(line.matches('\t').count(), FIELD_COUNT - 1);
        assert_eq!(decode(&line).unwrap(), r);
    }

    #[test]
    fn roundtrip_empty_ua() {
        let mut r = LogRecord::example();
        r.user_agent = String::new();
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn negative_tz_offset() {
        let mut r = LogRecord::example();
        r.tz_offset_secs = -11 * 3600;
        assert_eq!(decode(&encode(&r)).unwrap().tz_offset_secs, -39600);
    }

    #[test]
    fn missing_field_error() {
        let err = decode("123\t1").unwrap_err();
        assert_eq!(err, TextDecodeError::MissingField { field: "object" });
        assert!(err.to_string().contains("object"));
    }

    #[test]
    fn invalid_number_error() {
        let r = LogRecord::example();
        let line = encode(&r).replace(&r.timestamp.to_string(), "not-a-number");
        match decode(&line).unwrap_err() {
            TextDecodeError::InvalidField { field, .. } => assert_eq!(field, "timestamp"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_cache_token() {
        let r = LogRecord::example();
        let line = encode(&r).replace("\tHIT\t", "\tMAYBE\t");
        match decode(&line).unwrap_err() {
            TextDecodeError::InvalidField { field, value } => {
                assert_eq!(field, "cache_status");
                assert_eq!(value, "MAYBE");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_status_code() {
        let r = LogRecord::example();
        let line = encode(&r).replace("\t206\t", "\t999\t");
        match decode(&line).unwrap_err() {
            TextDecodeError::InvalidField { field, .. } => assert_eq!(field, "status"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn too_many_fields() {
        let line = format!("{}\textra", encode(&LogRecord::example()));
        assert_eq!(
            decode(&line).unwrap_err(),
            TextDecodeError::TooManyFields {
                expected: FIELD_COUNT
            }
        );
    }

    #[test]
    fn unknown_escape_preserved() {
        assert_eq!(unescape("a\\zb"), "a\\zb");
        assert_eq!(unescape("trailing\\"), "trailing\\");
    }

    #[test]
    fn unknown_format_decodes_as_bin() {
        let r = LogRecord::example();
        let line = encode(&r).replace("\tmp4\t", "\texotic\t");
        assert_eq!(decode(&line).unwrap().format, FileFormat::Bin);
    }

    #[test]
    fn roundtrip_degraded_fields() {
        let mut r = LogRecord::example();
        r.degraded = DegradedServe::Stale;
        r.retries = 3;
        let line = encode(&r);
        assert!(line.ends_with("\tSTALE\t3"));
        assert_eq!(decode(&line).unwrap(), r);
    }

    #[test]
    fn twelve_field_lines_decode_with_healthy_defaults() {
        // A line from a pre-fault-model writer: strip the trailing
        // `degraded` and `retries` fields.
        let full = encode(&LogRecord::example());
        let legacy = full
            .rsplitn(3, '\t')
            .last()
            .expect("rsplitn yields at least one piece")
            .to_string();
        assert_eq!(legacy.matches('\t').count(), 11);
        let decoded = decode(&legacy).unwrap();
        assert_eq!(decoded.degraded, DegradedServe::None);
        assert_eq!(decoded.retries, 0);
        assert_eq!(decoded, LogRecord::example());
    }

    #[test]
    fn invalid_degraded_token() {
        let line = encode(&LogRecord::example()).replace("\t-\t", "\tBROKEN\t");
        match decode(&line).unwrap_err() {
            TextDecodeError::InvalidField { field, value } => {
                assert_eq!(field, "degraded");
                assert_eq!(value, "BROKEN");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_retries_value() {
        let mut r = LogRecord::example();
        r.retries = 7;
        let line = encode(&r).replace("\t7", "\t-7");
        match decode(&line).unwrap_err() {
            TextDecodeError::InvalidField { field, .. } => assert_eq!(field, "retries"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn encode_into_appends() {
        let mut buf = String::from("prefix|");
        encode_into(&LogRecord::example(), &mut buf);
        assert!(buf.starts_with("prefix|"));
        assert!(decode(&buf["prefix|".len()..]).is_ok());
    }
}
