//! Durable write primitives and a storage fault-injection seam.
//!
//! Long spool-generation runs die for mundane reasons — SIGKILL, OOM,
//! full disks — and a torn shard write must never be mistaken for a
//! complete one. Every file the out-of-core pipeline persists goes
//! through [`write_atomic`]: write to `<name>.tmp`, flush, `fsync`,
//! atomically rename over the final name, then `fsync` the parent
//! directory so the rename itself survives a crash. A file is therefore
//! either absent or complete; readers never see partial contents.
//!
//! The [`IoLayer`] trait is the fault seam. Production code passes
//! [`RealIo`] (every operation proceeds); recovery tests pass a
//! [`FailAt`] that deterministically fails the K-th storage operation —
//! optionally as `ENOSPC` — which lets a property test "kill" the
//! pipeline at every write/fsync/rename boundary and assert that a
//! resumed run reproduces the uninterrupted output byte for byte.

use std::fmt::Debug;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher.
///
/// Dependency-free and stable across platforms and releases; used for
/// shard column checksums, manifest fingerprints, and checkpoint
/// trailers. Not cryptographic — it detects corruption, not tampering.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Creates a hasher at the offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The hash of everything folded in so far.
    ///
    /// (Named `digest`, not `finish`, so the workspace call-graph linter
    /// never conflates hashing with the many streaming `finish` folds.)
    pub fn digest(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a 64-bit hash of `bytes` in one call.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.digest()
}

/// A storage operation checked against an [`IoLayer`] before it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Creating the temporary file.
    Create,
    /// Flushing buffered body bytes.
    Write,
    /// `fsync` of the temporary file.
    Fsync,
    /// Atomic rename onto the final name.
    Rename,
}

/// The storage fault seam.
///
/// [`write_atomic`] asks the layer for permission before each create /
/// write / fsync / rename; a layer that returns an error simulates that
/// operation failing at exactly that point. The real implementation
/// ([`RealIo`]) always says yes.
pub trait IoLayer: Send + Sync + Debug {
    /// Returns `Err` to make operation `op` on `path` fail.
    fn check(&self, op: IoOp, path: &Path) -> io::Result<()>;
}

/// The production layer: every operation proceeds.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl IoLayer for RealIo {
    fn check(&self, _op: IoOp, _path: &Path) -> io::Result<()> {
        Ok(())
    }
}

/// Deterministic fault injector: fails the K-th checked operation
/// (1-based), once; operations before and after succeed.
///
/// The single failure models a crash — the pipeline aborts on the first
/// storage error, so what matters is *where* it dies, and a later
/// resumed run (with [`RealIo`]) must recover from that exact state.
#[derive(Debug)]
pub struct FailAt {
    fail_at: u64,
    enospc: bool,
    seen: AtomicU64,
}

impl FailAt {
    /// Fails the `k`-th checked operation (1-based) with a generic
    /// injected I/O error. `k == 0` never fails.
    pub fn new(k: u64) -> Self {
        Self {
            fail_at: k,
            enospc: false,
            seen: AtomicU64::new(0),
        }
    }

    /// Fails the `k`-th checked operation with `ENOSPC` (disk full).
    pub fn enospc(k: u64) -> Self {
        Self {
            fail_at: k,
            enospc: true,
            seen: AtomicU64::new(0),
        }
    }

    /// Total operations checked so far (used to size kill-anywhere
    /// sweeps: run once with a never-failing injector to count ops).
    pub fn ops_seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }
}

impl IoLayer for FailAt {
    fn check(&self, op: IoOp, path: &Path) -> io::Result<()> {
        let n = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if n != self.fail_at {
            return Ok(());
        }
        if self.enospc {
            // `ErrorKind::StorageFull` is unstable on this toolchain;
            // raw errno 28 round-trips through `raw_os_error`.
            return Err(io::Error::from_raw_os_error(28));
        }
        Err(io::Error::new(
            io::ErrorKind::Other,
            format!("injected {op:?} failure at op {n} ({})", path.display()),
        ))
    }
}

/// True when `err` is an out-of-space condition (`ENOSPC`).
pub fn is_enospc(err: &io::Error) -> bool {
    err.raw_os_error() == Some(28)
}

/// The temporary-name twin of `path` used during an atomic write.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Writes a file atomically: body to `<path>.tmp`, flush, `fsync`,
/// rename onto `path`, `fsync` the parent directory.
///
/// On any failure the temporary file is removed (best effort) and
/// `path` is untouched — after a crash a reader sees either the old
/// complete file or none at all. The `.tmp` suffix keeps in-flight
/// files invisible to `.col` directory listings.
pub fn write_atomic<F>(io: &dyn IoLayer, path: &Path, body: F) -> io::Result<()>
where
    F: FnOnce(&mut dyn Write) -> io::Result<()>,
{
    let tmp = tmp_path(path);
    let result = write_atomic_inner(io, path, &tmp, body);
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn write_atomic_inner<F>(io: &dyn IoLayer, path: &Path, tmp: &Path, body: F) -> io::Result<()>
where
    F: FnOnce(&mut dyn Write) -> io::Result<()>,
{
    io.check(IoOp::Create, path)?;
    let file = File::create(tmp)?; // truncates a stale .tmp from a prior crash
    let mut writer = BufWriter::new(file);
    body(&mut writer)?;
    io.check(IoOp::Write, path)?;
    writer.flush()?;
    let file = writer.into_inner().map_err(|e| e.into_error())?;
    io.check(IoOp::Fsync, path)?;
    file.sync_all()?;
    io.check(IoOp::Rename, path)?;
    std::fs::rename(tmp, path)?;
    sync_parent(path)
}

/// `fsync` of `path`'s parent directory so the rename is durable.
#[cfg(unix)]
fn sync_parent(path: &Path) -> io::Result<()> {
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => File::open(parent)?.sync_all(),
        _ => Ok(()),
    }
}

#[cfg(not(unix))]
fn sync_parent(_path: &Path) -> io::Result<()> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("oat-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        let mut streaming = Fnv1a::new();
        streaming.update(b"foo");
        streaming.update(b"bar");
        assert_eq!(streaming.digest(), fnv1a64(b"foobar"));
    }

    #[test]
    fn write_atomic_lands_complete_file() {
        let dir = temp_dir("ok");
        let path = dir.join("out.bin");
        write_atomic(&RealIo, &path, |w| w.write_all(b"hello")).expect("atomic write");
        assert_eq!(std::fs::read(&path).expect("read back"), b"hello");
        assert!(!tmp_path(&path).exists(), "tmp cleaned up by rename");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_no_trace() {
        let dir = temp_dir("fail");
        let path = dir.join("out.bin");
        // Ops per write: Create, Write, Fsync, Rename — fail each in turn.
        for k in 1..=4 {
            let inject = FailAt::new(k);
            let err = write_atomic(&inject, &path, |w| w.write_all(b"hello"))
                .expect_err("injected failure");
            assert!(!is_enospc(&err));
            assert!(!path.exists(), "no final file after failing op {k}");
            assert!(
                !tmp_path(&path).exists(),
                "no tmp left after failing op {k}"
            );
        }
        let inject = FailAt::new(5);
        write_atomic(&inject, &path, |w| w.write_all(b"hello")).expect("only 4 ops per write");
        assert_eq!(inject.ops_seen(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_is_detectable() {
        let dir = temp_dir("enospc");
        let path = dir.join("out.bin");
        let inject = FailAt::enospc(3);
        let err =
            write_atomic(&inject, &path, |w| w.write_all(b"hello")).expect_err("injected enospc");
        assert!(is_enospc(&err));
        assert!(!is_enospc(&io::Error::new(io::ErrorKind::Other, "boom")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_is_atomic() {
        let dir = temp_dir("overwrite");
        let path = dir.join("out.bin");
        write_atomic(&RealIo, &path, |w| w.write_all(b"old")).expect("first write");
        // A failed overwrite must leave the previous contents intact.
        let inject = FailAt::new(4); // fail the rename
        write_atomic(&inject, &path, |w| w.write_all(b"new")).expect_err("injected failure");
        assert_eq!(std::fs::read(&path).expect("read back"), b"old");
        write_atomic(&RealIo, &path, |w| w.write_all(b"new")).expect("second write");
        assert_eq!(std::fs::read(&path).expect("read back"), b"new");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
