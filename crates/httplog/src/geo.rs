//! Coarse geography: the four continents the paper's users span.

use serde::{Deserialize, Serialize};

/// A coarse client region.
///
/// The paper's logs cover users "in four different continents"; requests are
/// routed to the nearest CDN PoP by region, and local-time analyses use the
/// region's representative UTC offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    /// North America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Europe.
    Europe,
    /// Asia.
    Asia,
}

impl Region {
    /// All regions in a stable order.
    pub const ALL: [Region; 4] = [
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Europe,
        Region::Asia,
    ];

    /// Representative UTC offsets (seconds) spanned by the region, used when
    /// assigning a synthetic user's local timezone.
    pub const fn utc_offsets_secs(self) -> &'static [i32] {
        match self {
            Region::NorthAmerica => &[-8 * 3600, -7 * 3600, -6 * 3600, -5 * 3600],
            Region::SouthAmerica => &[-5 * 3600, -4 * 3600, -3 * 3600],
            Region::Europe => &[0, 3600, 2 * 3600, 3 * 3600],
            Region::Asia => &[5 * 3600 + 1800, 7 * 3600, 8 * 3600, 9 * 3600],
        }
    }

    /// Stable wire code.
    pub const fn code(self) -> u8 {
        match self {
            Region::NorthAmerica => 0,
            Region::SouthAmerica => 1,
            Region::Europe => 2,
            Region::Asia => 3,
        }
    }

    /// Inverse of [`Region::code`].
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Region::NorthAmerica),
            1 => Some(Region::SouthAmerica),
            2 => Some(Region::Europe),
            3 => Some(Region::Asia),
            _ => None,
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Region::NorthAmerica => "north-america",
            Region::SouthAmerica => "south-america",
            Region::Europe => "europe",
            Region::Asia => "asia",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for r in Region::ALL {
            assert_eq!(Region::from_code(r.code()), Some(r));
        }
        assert_eq!(Region::from_code(9), None);
    }

    #[test]
    fn offsets_within_utc_range() {
        for r in Region::ALL {
            assert!(!r.utc_offsets_secs().is_empty());
            for &off in r.utc_offsets_secs() {
                assert!((-12 * 3600..=14 * 3600).contains(&off));
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Region::Asia.to_string(), "asia");
        assert_eq!(Region::NorthAmerica.to_string(), "north-america");
    }
}
