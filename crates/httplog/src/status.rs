//! HTTP response status codes and CDN cache status.

use serde::{Deserialize, Serialize};

/// CDN cache status reported in each log record.
///
/// `HIT` means the object was served from the edge cache, `MISS` that it had
/// to be fetched from the origin (or a parent tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheStatus {
    /// Served from the CDN cache.
    Hit,
    /// Not present in the CDN cache.
    Miss,
}

impl CacheStatus {
    /// The log-format token (`HIT` / `MISS`).
    pub const fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "HIT",
            CacheStatus::Miss => "MISS",
        }
    }

    /// Parses a log-format token.
    pub fn from_str_token(s: &str) -> Option<Self> {
        match s {
            "HIT" => Some(CacheStatus::Hit),
            "MISS" => Some(CacheStatus::Miss),
            _ => None,
        }
    }

    /// Whether this is a cache hit.
    pub const fn is_hit(self) -> bool {
        matches!(self, CacheStatus::Hit)
    }
}

impl std::fmt::Display for CacheStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How fault handling degraded a response, if at all.
///
/// Healthy serves carry [`DegradedServe::None`]; the other variants mark
/// the graceful-degradation paths of the CDN simulator's fault model
/// (DESIGN.md "Fault model & degradation semantics"). The log-format
/// token is `-` for healthy serves so that healthy logs stay visually
/// unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DegradedServe {
    /// Healthy serve: no fault handling was involved.
    #[default]
    None,
    /// Served by a healthy sibling PoP while the routed PoP was down.
    Failover,
    /// Served from a cached copy without origin revalidation
    /// (stale-while-revalidate during an origin brownout).
    Stale,
    /// Load-shed or origin-unreachable: answered `503` without a body.
    Shed,
}

impl DegradedServe {
    /// The log-format token (`-` / `FAILOVER` / `STALE` / `SHED`).
    pub const fn as_str(self) -> &'static str {
        match self {
            DegradedServe::None => "-",
            DegradedServe::Failover => "FAILOVER",
            DegradedServe::Stale => "STALE",
            DegradedServe::Shed => "SHED",
        }
    }

    /// Parses a log-format token.
    pub fn from_str_token(s: &str) -> Option<Self> {
        match s {
            "-" => Some(DegradedServe::None),
            "FAILOVER" => Some(DegradedServe::Failover),
            "STALE" => Some(DegradedServe::Stale),
            "SHED" => Some(DegradedServe::Shed),
            _ => None,
        }
    }

    /// Compact wire code for the binary codec.
    pub const fn code(self) -> u8 {
        match self {
            DegradedServe::None => 0,
            DegradedServe::Failover => 1,
            DegradedServe::Stale => 2,
            DegradedServe::Shed => 3,
        }
    }

    /// Inverse of [`DegradedServe::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(DegradedServe::None),
            1 => Some(DegradedServe::Failover),
            2 => Some(DegradedServe::Stale),
            3 => Some(DegradedServe::Shed),
            _ => None,
        }
    }

    /// Whether any degradation path was taken.
    pub const fn is_degraded(self) -> bool {
        !matches!(self, DegradedServe::None)
    }
}

impl std::fmt::Display for DegradedServe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An HTTP response status code.
///
/// A thin validated wrapper over the numeric code. The paper's Figure 16
/// reports codes 200, 204, 206, 304, 403 and 416; constants are provided
/// for those, but any code in `100..=599` is representable.
///
/// # Example
///
/// ```
/// use oat_httplog::HttpStatus;
///
/// let ok = HttpStatus::OK;
/// assert_eq!(ok.code(), 200);
/// assert!(ok.is_success());
/// let partial = HttpStatus::new(206)?;
/// assert!(partial.is_success());
/// # Ok::<(), oat_httplog::status::InvalidStatusError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HttpStatus(u16);

impl HttpStatus {
    /// `200 OK`.
    pub const OK: HttpStatus = HttpStatus(200);
    /// `204 No Content`.
    pub const NO_CONTENT: HttpStatus = HttpStatus(204);
    /// `206 Partial Content` (range responses for video chunks).
    pub const PARTIAL_CONTENT: HttpStatus = HttpStatus(206);
    /// `304 Not Modified` (successful browser-cache revalidation).
    pub const NOT_MODIFIED: HttpStatus = HttpStatus(304);
    /// `403 Forbidden` (hot-link protection, expired tokens).
    pub const FORBIDDEN: HttpStatus = HttpStatus(403);
    /// `404 Not Found`.
    pub const NOT_FOUND: HttpStatus = HttpStatus(404);
    /// `416 Range Not Satisfiable`.
    pub const RANGE_NOT_SATISFIABLE: HttpStatus = HttpStatus(416);
    /// `503 Service Unavailable` (load shedding / failed origin fetch
    /// under the fault model).
    pub const SERVICE_UNAVAILABLE: HttpStatus = HttpStatus(503);

    /// The codes the paper's Figure 16 reports, in x-axis order.
    pub const FIGURE_16: [HttpStatus; 6] = [
        HttpStatus::OK,
        HttpStatus::NO_CONTENT,
        HttpStatus::PARTIAL_CONTENT,
        HttpStatus::NOT_MODIFIED,
        HttpStatus::FORBIDDEN,
        HttpStatus::RANGE_NOT_SATISFIABLE,
    ];

    /// Validates and wraps a numeric status code.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidStatusError`] when `code` is outside `100..=599`.
    pub const fn new(code: u16) -> Result<Self, InvalidStatusError> {
        if code >= 100 && code <= 599 {
            Ok(HttpStatus(code))
        } else {
            Err(InvalidStatusError { code })
        }
    }

    /// The numeric code.
    pub const fn code(self) -> u16 {
        self.0
    }

    /// `2xx`.
    pub const fn is_success(self) -> bool {
        self.0 >= 200 && self.0 < 300
    }

    /// `3xx`.
    pub const fn is_redirection(self) -> bool {
        self.0 >= 300 && self.0 < 400
    }

    /// `4xx`.
    pub const fn is_client_error(self) -> bool {
        self.0 >= 400 && self.0 < 500
    }

    /// Whether a response with this status carries the object body
    /// (full or partial).
    pub const fn carries_body(self) -> bool {
        self.0 == 200 || self.0 == 206
    }
}

impl std::fmt::Display for HttpStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<u16> for HttpStatus {
    type Error = InvalidStatusError;

    fn try_from(code: u16) -> Result<Self, Self::Error> {
        HttpStatus::new(code)
    }
}

/// Error for status codes outside `100..=599`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidStatusError {
    /// The rejected code.
    pub code: u16,
}

impl std::fmt::Display for InvalidStatusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid HTTP status code {}", self.code)
    }
}

impl std::error::Error for InvalidStatusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_status_tokens() {
        assert_eq!(CacheStatus::Hit.as_str(), "HIT");
        assert_eq!(CacheStatus::from_str_token("MISS"), Some(CacheStatus::Miss));
        assert_eq!(CacheStatus::from_str_token("hit"), None);
        assert!(CacheStatus::Hit.is_hit());
        assert!(!CacheStatus::Miss.is_hit());
        assert_eq!(CacheStatus::Miss.to_string(), "MISS");
    }

    #[test]
    fn status_validation() {
        assert!(HttpStatus::new(200).is_ok());
        assert!(HttpStatus::new(599).is_ok());
        assert!(HttpStatus::new(100).is_ok());
        assert_eq!(HttpStatus::new(99).unwrap_err().code, 99);
        assert!(HttpStatus::new(600).is_err());
        assert!(HttpStatus::try_from(0u16).is_err());
        assert_eq!(
            HttpStatus::try_from(206u16).unwrap(),
            HttpStatus::PARTIAL_CONTENT
        );
    }

    #[test]
    fn status_families() {
        assert!(HttpStatus::OK.is_success());
        assert!(HttpStatus::PARTIAL_CONTENT.is_success());
        assert!(HttpStatus::NOT_MODIFIED.is_redirection());
        assert!(HttpStatus::FORBIDDEN.is_client_error());
        assert!(!HttpStatus::NOT_MODIFIED.is_success());
    }

    #[test]
    fn carries_body() {
        assert!(HttpStatus::OK.carries_body());
        assert!(HttpStatus::PARTIAL_CONTENT.carries_body());
        assert!(!HttpStatus::NOT_MODIFIED.carries_body());
        assert!(!HttpStatus::FORBIDDEN.carries_body());
        assert!(!HttpStatus::NO_CONTENT.carries_body());
    }

    #[test]
    fn figure_16_codes() {
        let codes: Vec<u16> = HttpStatus::FIGURE_16.iter().map(|s| s.code()).collect();
        assert_eq!(codes, vec![200, 204, 206, 304, 403, 416]);
    }

    #[test]
    fn error_display() {
        let e = HttpStatus::new(42).unwrap_err();
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn service_unavailable_is_bodyless_server_error() {
        let s = HttpStatus::SERVICE_UNAVAILABLE;
        assert_eq!(s.code(), 503);
        assert!(!s.carries_body());
        assert!(!s.is_success());
    }

    #[test]
    fn degraded_serve_tokens_round_trip() {
        for d in [
            DegradedServe::None,
            DegradedServe::Failover,
            DegradedServe::Stale,
            DegradedServe::Shed,
        ] {
            assert_eq!(DegradedServe::from_str_token(d.as_str()), Some(d));
            assert_eq!(DegradedServe::from_code(d.code()), Some(d));
        }
        assert_eq!(DegradedServe::from_str_token("stale"), None);
        assert_eq!(DegradedServe::from_code(9), None);
        assert_eq!(DegradedServe::default(), DegradedServe::None);
        assert!(!DegradedServe::None.is_degraded());
        assert!(DegradedServe::Shed.is_degraded());
        assert_eq!(DegradedServe::Failover.to_string(), "FAILOVER");
    }
}
