//! Property-based tests: both row codecs round-trip arbitrary records, and
//! the columnar shard path (spool → zone-pruned scan → quarantine) agrees
//! with them byte for byte.

use bytes::BytesMut;
use oat_httplog::codec::{binary, text};
use oat_httplog::io::{read_all, write_all, Format};
use oat_httplog::{
    Anonymizer, CacheStatus, ColumnarDirReader, ColumnarDirWriter, DegradedServe, ErrorBudget,
    FileFormat, HttpStatus, HttplogError, LogRecord, ObjectId, PopId, PublisherId, ShardFilter,
    UserId,
};
use proptest::prelude::*;

/// Fresh per-case spool directory (unique across parallel test threads).
fn temp_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "oat-httplog-props-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Spools `records` into a columnar directory and reopens it for reading.
fn spool(
    records: &[LogRecord],
    rows_per_shard: usize,
    tag: &str,
) -> (std::path::PathBuf, ColumnarDirReader<LogRecord>) {
    let dir = temp_dir(tag);
    let mut writer =
        ColumnarDirWriter::<LogRecord>::new(&dir, "rec", rows_per_shard).expect("create writer");
    writer.push_batch(records).expect("spool records");
    writer.finish().expect("finish spool");
    let reader = ColumnarDirReader::open(&dir, "rec").expect("open spool");
    (dir, reader)
}

fn record_strategy() -> impl Strategy<Value = LogRecord> {
    (
        (
            any::<u64>(),
            any::<u16>(),
            any::<u64>(),
            0usize..FileFormat::ALL.len(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            // UA strings including escapes and unicode.
            "[ -~\\t\\n\\\\éλ]{0,120}",
            any::<bool>(),
            100u16..=599,
            any::<u16>(),
            -14 * 3600i32..=14 * 3600,
        ),
        0u8..=3,
        any::<u8>(),
    )
        .prop_map(
            |(
                (ts, pubid, obj, fmt, size, served, user, ua, hit, status, pop, tz),
                deg,
                retries,
            )| {
                LogRecord {
                    timestamp: ts,
                    publisher: PublisherId::new(pubid),
                    object: ObjectId::new(obj),
                    format: FileFormat::ALL[fmt],
                    object_size: size,
                    bytes_served: served,
                    user: UserId::new(user),
                    user_agent: ua,
                    cache_status: if hit {
                        CacheStatus::Hit
                    } else {
                        CacheStatus::Miss
                    },
                    status: HttpStatus::new(status).expect("status in range"),
                    pop: PopId::new(pop),
                    tz_offset_secs: tz,
                    degraded: DegradedServe::from_code(deg).expect("code in range"),
                    retries,
                }
            },
        )
}

proptest! {
    #[test]
    fn text_codec_roundtrips(record in record_strategy()) {
        let line = text::encode(&record);
        prop_assert!(!line.contains('\n'));
        let decoded = text::decode(&line).expect("well-formed line");
        prop_assert_eq!(decoded, record);
    }

    #[test]
    fn binary_codec_roundtrips(record in record_strategy()) {
        let mut buf = BytesMut::new();
        binary::encode(&record, &mut buf).expect("UA fits frame");
        let mut slice = buf.freeze();
        let decoded = binary::decode(&mut slice).expect("well-formed frame");
        prop_assert_eq!(decoded, record);
        prop_assert_eq!(slice.len(), 0);
    }

    #[test]
    fn io_stream_roundtrips(records in prop::collection::vec(record_strategy(), 0..30)) {
        for format in [Format::Text, Format::Binary] {
            let mut buf = Vec::new();
            let n = write_all(&mut buf, format, &records).unwrap();
            prop_assert_eq!(n as usize, records.len());
            let back = read_all(&buf[..], format).unwrap();
            prop_assert_eq!(&back, &records);
        }
    }

    #[test]
    fn binary_decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut slice = &bytes[..];
        let _ = binary::decode(&mut slice); // must not panic
    }

    #[test]
    fn text_decode_never_panics_on_garbage(line in "[^\\n]{0,200}") {
        let _ = text::decode(&line); // must not panic
    }

    #[test]
    fn anonymizer_is_injective_in_practice(urls in prop::collection::hash_set("[a-z0-9/]{1,40}", 2..50)) {
        let anon = Anonymizer::default();
        let ids: std::collections::HashSet<u64> =
            urls.iter().map(|u| anon.object_id(u).raw()).collect();
        prop_assert_eq!(ids.len(), urls.len());
    }

    /// Round-tripping through the columnar spool is invisible to every row
    /// codec: the text and binary encodings of the read-back records are
    /// byte-identical to encoding the originals directly.
    #[test]
    fn columnar_roundtrip_is_byte_identical_per_codec(
        records in prop::collection::vec(record_strategy(), 1..40),
        rows_per_shard in 1usize..16,
    ) {
        let (dir, reader) = spool(&records, rows_per_shard, "roundtrip");
        let back = reader.read_all(&ShardFilter::all()).expect("read back");
        prop_assert_eq!(&back, &records);
        for (original, restored) in records.iter().zip(&back) {
            // Text codec (format v1 lines).
            prop_assert_eq!(text::encode(original), text::encode(restored));
            // Binary codec (current frame version).
            let (mut a, mut b) = (BytesMut::new(), BytesMut::new());
            binary::encode(original, &mut a).expect("UA fits frame");
            binary::encode(restored, &mut b).expect("UA fits frame");
            prop_assert_eq!(a.freeze(), b.freeze());
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Zone-map pruning is an optimization, never a filter: a pruned scan
    /// returns exactly the rows a full scan plus per-row predicate returns,
    /// in the same order, for arbitrary time/publisher/status filters.
    #[test]
    fn zone_pruned_scan_equals_full_scan(
        records in prop::collection::vec(record_strategy(), 1..60),
        rows_per_shard in 1usize..8,
        bounds in (any::<u64>(), any::<u64>()),
        use_time in any::<bool>(),
        publishers in prop::collection::vec(any::<u16>(), 0..4),
        classes in prop::collection::vec(1u8..=5, 0..3),
    ) {
        let mut filter = ShardFilter::all();
        if use_time {
            let (lo, hi) = (bounds.0.min(bounds.1), bounds.0.max(bounds.1));
            filter = filter.with_time(lo..hi);
        }
        if !publishers.is_empty() {
            filter = filter.with_publishers(
                publishers.iter().copied().map(PublisherId::new).collect(),
            );
        }
        if !classes.is_empty() {
            filter = filter.with_status_classes(classes);
        }
        let (dir, reader) = spool(&records, rows_per_shard, "pruned");
        let pruned = reader.read_all(&filter).expect("pruned scan");
        let expected: Vec<LogRecord> = records
            .iter()
            .filter(|r| filter.matches(*r))
            .cloned()
            .collect();
        prop_assert_eq!(pruned, expected);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Damaged shards never panic the lossy reader: truncation is always
    /// quarantined shard-by-shard under a generous budget, surviving rows
    /// still flow, and a zero budget fails closed.
    #[test]
    fn quarantine_survives_truncated_shards(
        records in prop::collection::vec(record_strategy(), 2..40),
        rows_per_shard in 1usize..8,
        shard_pick in any::<u64>(),
        keep_fraction in 0.0f64..0.95,
    ) {
        let (dir, reader) = spool(&records, rows_per_shard, "truncated");
        let paths = reader.paths().to_vec();
        let victim = &paths[(shard_pick % paths.len() as u64) as usize];
        let bytes = std::fs::read(victim).expect("read shard");
        std::fs::write(victim, &bytes[..(bytes.len() as f64 * keep_fraction) as usize])
            .expect("truncate shard");

        let budget = ErrorBudget::new(records.len() as u64 + 1);
        let mut survivors: Vec<LogRecord> = Vec::new();
        let (delivered, report) = reader
            .scan_lossy(&ShardFilter::all(), 0, budget, |batch| {
                survivors.extend_from_slice(batch);
            })
            .expect("lossy scan within budget");
        prop_assert!(report.quarantined >= 1);
        prop_assert_eq!(delivered as usize, survivors.len());
        prop_assert!(delivered < records.len() as u64);
        // Every surviving row is one of the originals, in trace order.
        let mut cursor = records.iter();
        for row in &survivors {
            prop_assert!(cursor.any(|r| r == row));
        }
        // Fail-closed: a zero budget refuses the damaged directory.
        let strict = reader.scan_lossy(&ShardFilter::all(), 0, ErrorBudget::new(0), |_| {});
        prop_assert!(matches!(
            strict,
            Err(HttplogError::ErrorBudgetExceeded { .. })
        ));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Arbitrary single-byte corruption never panics the lossy reader: it
    /// either delivers (possibly altered) rows or quarantines cleanly.
    #[test]
    fn quarantine_never_panics_on_corrupt_shards(
        records in prop::collection::vec(record_strategy(), 2..40),
        rows_per_shard in 1usize..8,
        shard_pick in any::<u64>(),
        offset_pick in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let (dir, reader) = spool(&records, rows_per_shard, "corrupt");
        let paths = reader.paths().to_vec();
        let victim = &paths[(shard_pick % paths.len() as u64) as usize];
        let mut bytes = std::fs::read(victim).expect("read shard");
        let offset = (offset_pick % bytes.len() as u64) as usize;
        bytes[offset] ^= flip;
        std::fs::write(victim, &bytes).expect("corrupt shard");

        let budget = ErrorBudget::new(records.len() as u64 + 1);
        let mut delivered = 0u64;
        let outcome = reader.scan_lossy(&ShardFilter::all(), 0, budget, |batch| {
            delivered += batch.len() as u64;
        });
        match outcome {
            Ok((n, _report)) => {
                prop_assert_eq!(n, delivered);
                prop_assert!(n <= records.len() as u64);
            }
            Err(e) => prop_assert!(e.is_data_error()),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
