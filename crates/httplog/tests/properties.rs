//! Property-based tests: both codecs round-trip arbitrary records.

use bytes::BytesMut;
use oat_httplog::codec::{binary, text};
use oat_httplog::io::{read_all, write_all, Format};
use oat_httplog::{
    Anonymizer, CacheStatus, DegradedServe, FileFormat, HttpStatus, LogRecord, ObjectId, PopId,
    PublisherId, UserId,
};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = LogRecord> {
    (
        (
            any::<u64>(),
            any::<u16>(),
            any::<u64>(),
            0usize..FileFormat::ALL.len(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            // UA strings including escapes and unicode.
            "[ -~\\t\\n\\\\éλ]{0,120}",
            any::<bool>(),
            100u16..=599,
            any::<u16>(),
            -14 * 3600i32..=14 * 3600,
        ),
        0u8..=3,
        any::<u8>(),
    )
        .prop_map(
            |(
                (ts, pubid, obj, fmt, size, served, user, ua, hit, status, pop, tz),
                deg,
                retries,
            )| {
                LogRecord {
                    timestamp: ts,
                    publisher: PublisherId::new(pubid),
                    object: ObjectId::new(obj),
                    format: FileFormat::ALL[fmt],
                    object_size: size,
                    bytes_served: served,
                    user: UserId::new(user),
                    user_agent: ua,
                    cache_status: if hit {
                        CacheStatus::Hit
                    } else {
                        CacheStatus::Miss
                    },
                    status: HttpStatus::new(status).expect("status in range"),
                    pop: PopId::new(pop),
                    tz_offset_secs: tz,
                    degraded: DegradedServe::from_code(deg).expect("code in range"),
                    retries,
                }
            },
        )
}

proptest! {
    #[test]
    fn text_codec_roundtrips(record in record_strategy()) {
        let line = text::encode(&record);
        prop_assert!(!line.contains('\n'));
        let decoded = text::decode(&line).expect("well-formed line");
        prop_assert_eq!(decoded, record);
    }

    #[test]
    fn binary_codec_roundtrips(record in record_strategy()) {
        let mut buf = BytesMut::new();
        binary::encode(&record, &mut buf).expect("UA fits frame");
        let mut slice = buf.freeze();
        let decoded = binary::decode(&mut slice).expect("well-formed frame");
        prop_assert_eq!(decoded, record);
        prop_assert_eq!(slice.len(), 0);
    }

    #[test]
    fn io_stream_roundtrips(records in prop::collection::vec(record_strategy(), 0..30)) {
        for format in [Format::Text, Format::Binary] {
            let mut buf = Vec::new();
            let n = write_all(&mut buf, format, &records).unwrap();
            prop_assert_eq!(n as usize, records.len());
            let back = read_all(&buf[..], format).unwrap();
            prop_assert_eq!(&back, &records);
        }
    }

    #[test]
    fn binary_decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut slice = &bytes[..];
        let _ = binary::decode(&mut slice); // must not panic
    }

    #[test]
    fn text_decode_never_panics_on_garbage(line in "[^\\n]{0,200}") {
        let _ = text::decode(&line); // must not panic
    }

    #[test]
    fn anonymizer_is_injective_in_practice(urls in prop::collection::hash_set("[a-z0-9/]{1,40}", 2..50)) {
        let anon = Anonymizer::default();
        let ids: std::collections::HashSet<u64> =
            urls.iter().map(|u| anon.object_id(u).raw()).collect();
        prop_assert_eq!(ids.len(), urls.len());
    }
}
